package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file defines the two round payload kinds the daemon exchanges.
// The transport treats payloads as opaque bytes; the kinds live here so
// every replica decodes them identically.
//
// Batch payload ('B'): the mutations one shard ingested this tick, plus
// an FNV-1a hash of the sender's current assignment (divergence
// tripwire — replicas of a deterministic state machine must agree on it
// every tick) and a more-pending flag that drives the cluster-wide
// drain loop. The mutation list reuses the binary ingest plane's
// fuzz-hardened batch frame codec verbatim.
//
// Step payload ('S'): one shard's core.ShardDecision — the requests,
// settles, keeps and parks of its slice of the sweep — in a flat
// little-endian layout with every length bounded before allocation.

// Payload kind tags (first byte of every round payload).
const (
	// PayloadBatch tags a batch-round payload.
	PayloadBatch byte = 'B'
	// PayloadStep tags a step-round payload.
	PayloadStep byte = 'S'
)

// PayloadKind returns the kind tag of an encoded round payload (0 when
// empty).
func PayloadKind(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// BatchPayload is one shard's contribution to a tick's batch round.
type BatchPayload struct {
	// StateHash fingerprints the sender's assignment before this tick's
	// batch applies; all shards must agree or the cluster has diverged.
	StateHash uint64
	// MorePending reports mutations still queued behind this batch:
	// the cluster-wide drain keeps ticking while any shard says true.
	MorePending bool
	// Batch is the shard's drained mutations for this tick.
	Batch graph.Batch
}

// AppendBatchPayload appends an encoded batch-round payload to dst.
func AppendBatchPayload(dst []byte, p BatchPayload) ([]byte, error) {
	dst = append(dst, PayloadBatch)
	dst = binary.LittleEndian.AppendUint64(dst, p.StateHash)
	if p.MorePending {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return graph.AppendBatchFrame(dst, p.Batch)
}

// DecodeBatchPayload decodes a batch-round payload.
func DecodeBatchPayload(b []byte) (BatchPayload, error) {
	if len(b) < 10 || b[0] != PayloadBatch {
		return BatchPayload{}, fmt.Errorf("cluster: malformed batch payload (%d bytes)", len(b))
	}
	p := BatchPayload{
		StateHash:   binary.LittleEndian.Uint64(b[1:]),
		MorePending: b[9] != 0,
	}
	f, err := graph.ReadFrame(bytes.NewReader(b[10:]))
	if err != nil {
		return BatchPayload{}, fmt.Errorf("cluster: batch payload mutations: %w", err)
	}
	if f.Type != graph.FrameBatch {
		return BatchPayload{}, fmt.Errorf("cluster: batch payload carries a %v frame, want batch", f.Type)
	}
	p.Batch = f.Batch
	return p, nil
}

// maxStepItems bounds every per-list length in a step payload; it is
// far above any real frontier (vertex IDs are int32) and keeps a
// hostile length field from allocating unbounded memory.
const maxStepItems = 1 << 28

// AppendStepPayload appends an encoded step-round payload to dst.
func AppendStepPayload(dst []byte, d *core.ShardDecision) ([]byte, error) {
	total := 0
	for _, reqs := range d.Reqs {
		total += len(reqs)
	}
	if total > maxStepItems || len(d.Cands) > maxStepItems || len(d.Settled) > maxStepItems ||
		len(d.Keeps) > maxStepItems || len(d.Parks) > maxStepItems || len(d.ParkDests) > maxStepItems {
		return dst, fmt.Errorf("cluster: step payload too large to encode")
	}
	dst = append(dst, PayloadStep)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Examined))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Requested))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Reqs)))
	for _, reqs := range d.Reqs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(reqs)))
		for _, r := range reqs {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.V))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Off))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.N))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r.W))
		}
	}
	dst = appendIDList(dst, d.Cands)
	dst = appendVertexList(dst, d.Settled)
	dst = appendVertexList(dst, d.Keeps)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Parks)))
	for _, pk := range d.Parks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(pk.V))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(pk.Off))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(pk.N))
	}
	dst = appendIDList(dst, d.ParkDests)
	return dst, nil
}

func appendIDList(dst []byte, ids []partition.ID) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst
}

func appendVertexList(dst []byte, vs []graph.VertexID) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// stepDecoder is a sticky-error cursor over an encoded step payload.
type stepDecoder struct {
	b   []byte
	off int
	err error
}

func (d *stepDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.err = fmt.Errorf("cluster: truncated step payload at byte %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

// count reads a list length and validates it against both the item
// bound and the bytes actually remaining (itemLen bytes per element),
// so a hostile length cannot drive a huge allocation.
func (d *stepDecoder) count(itemLen int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxStepItems || n*itemLen > len(d.b)-d.off {
		d.err = fmt.Errorf("cluster: step payload length %d exceeds the remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *stepDecoder) idList() []partition.ID {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]partition.ID, n)
	for i := range out {
		out[i] = partition.ID(d.u32())
	}
	return out
}

func (d *stepDecoder) vertexList() []graph.VertexID {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(d.u32())
	}
	return out
}

// DecodeStepPayload decodes a step-round payload. Range checks beyond
// structural bounds (candidate offsets, destination indices) are the
// apply phase's job — it validates against the live K and arena sizes.
func DecodeStepPayload(b []byte) (*core.ShardDecision, error) {
	if len(b) == 0 || b[0] != PayloadStep {
		return nil, fmt.Errorf("cluster: malformed step payload (%d bytes)", len(b))
	}
	d := &stepDecoder{b: b, off: 1}
	out := &core.ShardDecision{
		Examined:  int(d.u32()),
		Requested: int(d.u32()),
	}
	k := d.count(4)
	if d.err == nil {
		out.Reqs = make([][]core.ClusterReq, k)
		for i := 0; i < k && d.err == nil; i++ {
			n := d.count(16)
			if n == 0 {
				continue
			}
			reqs := make([]core.ClusterReq, n)
			for j := range reqs {
				reqs[j] = core.ClusterReq{
					V:   graph.VertexID(d.u32()),
					Off: int32(d.u32()),
					N:   int32(d.u32()),
					W:   int32(d.u32()),
				}
			}
			out.Reqs[i] = reqs
		}
	}
	out.Cands = d.idList()
	out.Settled = d.vertexList()
	out.Keeps = d.vertexList()
	nParks := d.count(12)
	if d.err == nil && nParks > 0 {
		out.Parks = make([]core.ClusterPark, nParks)
		for i := range out.Parks {
			out.Parks[i] = core.ClusterPark{
				V:   graph.VertexID(d.u32()),
				Off: int32(d.u32()),
				N:   int32(d.u32()),
			}
		}
	}
	out.ParkDests = d.idList()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after step payload", len(d.b)-d.off)
	}
	return out, nil
}
