package activeset

import (
	"fmt"
	"sort"

	"xdgp/internal/graph"
)

// State is the canonical serializable form of a Set, used by the
// checkpoint/restore path. It captures exactly the scheduling-relevant
// content — which vertices are on the frontier and which are parked under
// which destinations — in a normalized shape: both collections sorted,
// stale park entries (vertices woken since parking) dropped, and
// duplicates within one destination list collapsed. The scheduler's
// behaviour is invariant under this normalization: Prepare re-sorts the
// frontier every pass, and Mark/UnparkDest are idempotent, so a restored
// Set drains identically to the live one it was exported from.
type State struct {
	// Frontier holds the scheduled vertices, ascending.
	Frontier []graph.VertexID
	// Parked holds, per destination partition, the vertices parked on it,
	// ascending. A vertex awaiting several destinations appears in each.
	Parked [][]graph.VertexID
}

// Export returns the canonical State of the set. All slices are fresh
// copies; mutating them does not affect the set.
func (s *Set) Export() State {
	st := State{
		Frontier: append([]graph.VertexID(nil), s.frontier...),
		Parked:   make([][]graph.VertexID, len(s.parked)),
	}
	sortVertexIDs(st.Frontier)
	for j, list := range s.parked {
		var out []graph.VertexID
		for _, v := range list {
			if int(v) < len(s.parkedBit) && s.parkedBit[v] {
				out = append(out, v)
			}
		}
		sortVertexIDs(out)
		st.Parked[j] = dedupSorted(out)
	}
	return st
}

// RestoreSet builds a Set for k destinations and slots vertex slots
// holding exactly the given state. It validates shape (k park lists, IDs
// within the slot table) and the single-state invariant: a vertex cannot
// be both scheduled and parked.
func RestoreSet(k, slots int, st State) (*Set, error) {
	if len(st.Parked) != 0 && len(st.Parked) != k {
		return nil, fmt.Errorf("activeset: state has %d park lists, want %d", len(st.Parked), k)
	}
	s := New(k)
	s.Grow(slots)
	for _, v := range st.Frontier {
		if v < 0 || int(v) >= slots {
			return nil, fmt.Errorf("activeset: frontier vertex %d outside slot table [0,%d)", v, slots)
		}
		s.Mark(v)
	}
	for j, list := range st.Parked {
		for _, v := range list {
			if v < 0 || int(v) >= slots {
				return nil, fmt.Errorf("activeset: parked vertex %d outside slot table [0,%d)", v, slots)
			}
			if s.dirty[v] {
				return nil, fmt.Errorf("activeset: vertex %d both scheduled and parked on %d", v, j)
			}
			s.parkedBit[v] = true
			s.parked[j] = append(s.parked[j], v)
		}
	}
	return s, nil
}

func sortVertexIDs(ids []graph.VertexID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func dedupSorted(ids []graph.VertexID) []graph.VertexID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
