package activeset

import (
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func TestExportRestoreRoundTrip(t *testing.T) {
	s := New(3)
	s.Grow(10)
	s.Mark(4)
	s.Mark(1)
	s.Mark(7)
	// Park 2 under destinations 0 and 2; park 9 under 1.
	s.Park(2, []partition.ID{0, 2})
	s.Park(9, []partition.ID{1})
	// Create a stale entry: park 5 then wake it — the list entry remains
	// but parkedBit clears, so the export must drop it.
	s.Park(5, []partition.ID{0})
	s.Mark(5)

	st := s.Export()
	if got, want := len(st.Frontier), 4; got != want { // 1,4,5,7
		t.Fatalf("frontier size %d, want %d", got, want)
	}
	for i := 1; i < len(st.Frontier); i++ {
		if st.Frontier[i-1] >= st.Frontier[i] {
			t.Fatal("frontier not sorted ascending")
		}
	}
	if len(st.Parked[0]) != 1 || st.Parked[0][0] != 2 {
		t.Fatalf("parked[0] = %v, want [2] (stale entry 5 dropped)", st.Parked[0])
	}
	if len(st.Parked[1]) != 1 || st.Parked[1][0] != 9 {
		t.Fatalf("parked[1] = %v, want [9]", st.Parked[1])
	}
	if len(st.Parked[2]) != 1 || st.Parked[2][0] != 2 {
		t.Fatalf("parked[2] = %v, want [2]", st.Parked[2])
	}

	r, err := RestoreSet(3, 10, st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() {
		t.Fatalf("restored frontier %d, want %d", r.Len(), s.Len())
	}
	// Unparking destination 0 must wake exactly vertex 2 in both sets.
	s.UnparkDest(0)
	r.UnparkDest(0)
	if s.Len() != r.Len() {
		t.Fatalf("after UnparkDest(0): %d vs %d scheduled", s.Len(), r.Len())
	}
	// The restored state drains identically.
	alive := func(graph.VertexID) bool { return true }
	a, b := s.Prepare(alive), r.Prepare(alive)
	if len(a) != len(b) {
		t.Fatalf("prepared frontiers differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prepared frontiers differ at %d: %v vs %v", i, a, b)
		}
	}
	s.Commit()
	r.Commit()
}

func TestExportIsACopy(t *testing.T) {
	s := New(2)
	s.Grow(5)
	s.Mark(3)
	s.Park(1, []partition.ID{0})
	st := s.Export()
	st.Frontier[0] = -1
	st.Parked[0][0] = -1
	st2 := s.Export()
	if st2.Frontier[0] != 3 || st2.Parked[0][0] != 1 {
		t.Fatal("mutating an export leaked into the set")
	}
}

func TestRestoreSetValidation(t *testing.T) {
	if _, err := RestoreSet(2, 5, State{Parked: make([][]graph.VertexID, 3)}); err == nil {
		t.Fatal("accepted wrong park-list count")
	}
	if _, err := RestoreSet(2, 5, State{Frontier: []graph.VertexID{5}}); err == nil {
		t.Fatal("accepted out-of-range frontier vertex")
	}
	st := State{
		Frontier: []graph.VertexID{1},
		Parked:   [][]graph.VertexID{{1}, nil},
	}
	if _, err := RestoreSet(2, 5, st); err == nil {
		t.Fatal("accepted vertex both scheduled and parked")
	}
}
