// Package activeset implements the dirty-set/frontier bookkeeping shared
// by the incremental schedulers: core's active-set Step and the adaptive
// service's incremental Plan. One vertex is in exactly one of three
// states — scheduled (on the frontier, re-examined next pass), parked
// (awaiting capacity on specific destinations), or idle (settled; only a
// Mark re-schedules it).
package activeset

import (
	"sort"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Set is the scheduler state. The zero value is not usable; construct
// with New.
type Set struct {
	dirty     []bool // scheduled membership, indexed by vertex slot
	parkedBit []bool // parked membership, indexed by vertex slot
	frontier  []graph.VertexID
	next      []graph.VertexID
	// parked holds parked vertices per desired destination partition;
	// stale entries (vertices re-marked through another path) are
	// filtered by parkedBit when a destination is unparked, and lists
	// that outgrow the slot table are compacted in place so a
	// destination that stays at zero quota for a long run cannot
	// accumulate unbounded stale duplicates. compactScratch backs the
	// compaction's dedup bitmap.
	parked         [][]graph.VertexID
	compactScratch []bool
}

// New creates an empty set for k destination partitions.
func New(k int) *Set {
	return &Set{parked: make([][]graph.VertexID, k)}
}

// Grow sizes the bitmaps to the vertex table.
func (s *Set) Grow(slots int) {
	for len(s.dirty) < slots {
		s.dirty = append(s.dirty, false)
		s.parkedBit = append(s.parkedBit, false)
	}
}

// Len returns the number of scheduled vertices.
func (s *Set) Len() int { return len(s.frontier) }

// Mark schedules v for re-examination, unparking it if it was waiting on
// capacity. Idempotent: a vertex already scheduled is not appended twice.
// Out-of-range IDs are ignored (call Grow first).
func (s *Set) Mark(v graph.VertexID) {
	if int(v) >= len(s.dirty) || v < 0 || s.dirty[v] {
		return
	}
	s.parkedBit[v] = false
	s.dirty[v] = true
	s.frontier = append(s.frontier, v)
}

// MarkNeighborhood schedules v and every vertex whose Γ-count changes
// when v migrates: its out-neighbours, plus in-neighbours on directed
// graphs. Both incremental schedulers wake granted movers through this
// single definition of "neighbourhood".
func (s *Set) MarkNeighborhood(g *graph.Graph, v graph.VertexID) {
	s.Mark(v)
	g.ForEachNeighbor(v, s.Mark)
	if g.Directed() {
		g.ForEachInNeighbor(v, s.Mark)
	}
}

// Unschedule clears v's scheduled bit without parking it — the vertex
// settled. Safe to call concurrently for distinct vertices (each touches
// only its own bitmap element), which is how the sharded drain uses it.
func (s *Set) Unschedule(v graph.VertexID) {
	if int(v) < len(s.dirty) && v >= 0 {
		s.dirty[v] = false
	}
}

// Park records that v's request was hard-denied towards every
// destination in dsts. v leaves the frontier (the caller must not Keep
// it) and re-wakes on UnparkDest of one of the destinations, UnparkAll,
// or a Mark from a neighbourhood event.
func (s *Set) Park(v graph.VertexID, dsts []partition.ID) {
	if int(v) >= len(s.dirty) || v < 0 {
		return
	}
	s.dirty[v] = false
	s.parkedBit[v] = true
	for _, dst := range dsts {
		if len(s.parked[dst]) >= len(s.dirty) {
			s.compactParked(dst)
		}
		s.parked[dst] = append(s.parked[dst], v)
	}
}

// compactParked rewrites a park list keeping one entry per still-parked
// vertex, dropping entries for vertices woken since parking. A vertex
// re-parked under a different destination may be retained — a spurious
// unpark is safe (the vertex is just re-examined once) — so each list
// stays bounded by the slot count while every genuine waiter survives.
func (s *Set) compactParked(dst partition.ID) {
	for len(s.compactScratch) < len(s.parkedBit) {
		s.compactScratch = append(s.compactScratch, false)
	}
	out := s.parked[dst][:0]
	for _, v := range s.parked[dst] {
		if s.parkedBit[v] && !s.compactScratch[v] {
			s.compactScratch[v] = true
			out = append(out, v)
		}
	}
	for _, v := range out {
		s.compactScratch[v] = false
	}
	s.parked[dst] = out
}

// UnparkDest re-schedules every vertex parked on destination j.
func (s *Set) UnparkDest(j partition.ID) {
	for _, v := range s.parked[j] {
		if int(v) < len(s.parkedBit) && s.parkedBit[v] {
			s.Mark(v)
		}
	}
	s.parked[j] = s.parked[j][:0]
}

// UnparkAll re-schedules every parked vertex — called when capacities
// are re-derived, which can raise any destination's quota.
func (s *Set) UnparkAll() {
	for j := range s.parked {
		s.UnparkDest(partition.ID(j))
	}
}

// Prepare compacts the frontier (dropping vertices for which alive
// reports false) and sorts it by vertex ID, so that drain order — and
// therefore RNG consumption — is deterministic. The returned slice is
// valid until the next Keep/Commit/Rebuild and must be drained by the
// caller: every vertex either Keep'd (stays scheduled), Park'd, or
// Unschedule'd.
func (s *Set) Prepare(alive func(graph.VertexID) bool) []graph.VertexID {
	live := s.frontier[:0]
	for _, v := range s.frontier {
		if alive(v) {
			live = append(live, v)
		} else {
			s.dirty[v] = false
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	s.frontier = live
	s.next = s.next[:0]
	return live
}

// Keep retains a prepared vertex on the frontier for the next pass (its
// scheduled bit is already set).
func (s *Set) Keep(v graph.VertexID) { s.next = append(s.next, v) }

// Commit replaces the frontier with the vertices Keep'd since Prepare.
func (s *Set) Commit() {
	s.frontier, s.next = s.next, s.frontier[:0]
}

// Rebuild replaces the frontier with the concatenation of the given keep
// lists — the sharded drain's barrier-side Commit. Order is irrelevant
// (the next Prepare re-sorts).
func (s *Set) Rebuild(keeps ...[]graph.VertexID) {
	s.next = s.next[:0]
	for _, keep := range keeps {
		s.next = append(s.next, keep...)
	}
	s.frontier, s.next = s.next, s.frontier[:0]
}
