package activeset

import (
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func alive(...graph.VertexID) func(graph.VertexID) bool {
	return func(graph.VertexID) bool { return true }
}

func drain(s *Set) []graph.VertexID {
	f := s.Prepare(alive())
	out := append([]graph.VertexID(nil), f...)
	for _, v := range f {
		s.Unschedule(v)
	}
	s.Commit()
	return out
}

func TestMarkIsIdempotentAndSorted(t *testing.T) {
	s := New(2)
	s.Grow(10)
	for _, v := range []graph.VertexID{7, 3, 7, 3, 9} {
		s.Mark(v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := drain(s)
	want := []graph.VertexID{3, 7, 9}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("prepared %v, want %v", got, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", s.Len())
	}
	// A drained vertex can be re-marked.
	s.Mark(3)
	if s.Len() != 1 {
		t.Fatalf("re-mark failed: Len = %d", s.Len())
	}
}

func TestPrepareDropsDead(t *testing.T) {
	s := New(2)
	s.Grow(5)
	s.Mark(1)
	s.Mark(2)
	f := s.Prepare(func(v graph.VertexID) bool { return v != 1 })
	if len(f) != 1 || f[0] != 2 {
		t.Fatalf("prepared %v, want [2]", f)
	}
	s.Keep(2)
	s.Commit()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// The dropped vertex can be re-marked later (bit was cleared).
	s.Mark(1)
	if s.Len() != 2 {
		t.Fatalf("dead vertex could not be re-marked: Len = %d", s.Len())
	}
}

func TestParkAndUnpark(t *testing.T) {
	s := New(3)
	s.Grow(8)
	s.Mark(4)
	for _, v := range s.Prepare(alive()) {
		s.Park(v, []partition.ID{1, 2})
	}
	s.Commit()
	if s.Len() != 0 {
		t.Fatalf("parked vertex still scheduled: Len = %d", s.Len())
	}
	// Unparking an unrelated destination wakes nothing.
	s.UnparkDest(0)
	if s.Len() != 0 {
		t.Fatal("unrelated destination woke the parked vertex")
	}
	// Unparking a parked-on destination re-schedules it once; the stale
	// entry under the other destination is then inert.
	s.UnparkDest(1)
	if s.Len() != 1 {
		t.Fatalf("unpark woke %d, want 1", s.Len())
	}
	s.UnparkDest(2)
	if s.Len() != 1 {
		t.Fatalf("stale park entry double-scheduled: Len = %d", s.Len())
	}
}

func TestMarkClearsParkedState(t *testing.T) {
	s := New(2)
	s.Grow(4)
	s.Mark(3)
	for _, v := range s.Prepare(alive()) {
		s.Park(v, []partition.ID{0})
	}
	s.Commit()
	// A neighbourhood event re-marks the parked vertex directly…
	s.Mark(3)
	if s.Len() != 1 {
		t.Fatalf("Mark did not unpark: Len = %d", s.Len())
	}
	// …and the stale park-list entry must not act on it again after it
	// settles.
	for _, v := range s.Prepare(alive()) {
		s.Unschedule(v)
	}
	s.Commit()
	s.UnparkAll()
	if s.Len() != 0 {
		t.Fatalf("stale entry resurrected a settled vertex: Len = %d", s.Len())
	}
}

func TestRebuild(t *testing.T) {
	s := New(2)
	s.Grow(10)
	for _, v := range []graph.VertexID{1, 2, 3, 4} {
		s.Mark(v)
	}
	s.Prepare(alive())
	// Sharded drain: two keep lists, vertex 1 settles, vertex 4 parks.
	s.Unschedule(1)
	s.Park(4, []partition.ID{0})
	s.Rebuild([]graph.VertexID{2}, []graph.VertexID{3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got := drain(s)
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("rebuilt frontier %v, want [2 3]", got)
	}
	s.UnparkAll()
	if s.Len() != 1 {
		t.Fatalf("parked vertex lost across Rebuild: Len = %d", s.Len())
	}
}

func TestParkListsStayBounded(t *testing.T) {
	// A vertex that cycles park → wake → park against a destination that
	// never unparks must not grow that destination's list without bound:
	// compaction keeps each list within the slot count.
	s := New(2)
	s.Grow(4)
	for i := 0; i < 1000; i++ {
		s.Mark(3)
		for _, v := range s.Prepare(alive()) {
			s.Park(v, []partition.ID{0, 1})
		}
		s.Commit()
		// Wake through an unrelated path, leaving stale entries behind.
		s.Mark(3)
		for _, v := range s.Prepare(alive()) {
			s.Unschedule(v)
		}
		s.Commit()
	}
	for j, list := range s.parked {
		if len(list) > 4+1 {
			t.Fatalf("parked[%d] grew to %d entries on 4 slots", j, len(list))
		}
	}
	// And a genuine waiter still survives compaction.
	s.Mark(2)
	for _, v := range s.Prepare(alive()) {
		s.Park(v, []partition.ID{0})
	}
	s.Commit()
	s.UnparkDest(0)
	if s.Len() != 1 {
		t.Fatalf("waiter lost after compaction churn: Len = %d", s.Len())
	}
}
