package gen

import (
	"math"
	"math/rand"

	"xdgp/internal/graph"
)

// TwitterConfig parameterises the synthetic mention stream standing in for
// the paper's Twitter Streaming API capture (London, one full day). Each
// tick corresponds to one aggregation window (the paper plots 10-minute
// averages over 24 hours).
//
// Real mention graphs carry strong conversational locality — people mostly
// mention people inside their own social circle — and that locality is
// exactly what "get neighbours together" exploits. The generator models it
// with fixed user communities: a mention stays inside the author's
// community with probability IntraProb (targeting the community's own
// celebrities, Zipf-distributed) and goes to a global celebrity otherwise.
type TwitterConfig struct {
	Users       int     // user population
	Communities int     // number of fixed user communities
	IntraProb   float64 // probability a mention stays in-community
	Hours       float64 // stream length in simulated hours
	TickMinutes float64 // aggregation window per tick
	PeakRate    float64 // tweets/second at the diurnal peak
	TroughRate  float64 // tweets/second at the nightly trough
	ZipfS       float64 // Zipf exponent for mention popularity
	Seed        int64
}

// DefaultTwitterConfig mirrors Figure 8's setting: a full day in 10-minute
// windows with rates swinging between ≈10 and ≈50 tweets/second.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{
		Users:       20000,
		Communities: 250,
		IntraProb:   0.85,
		Hours:       24,
		TickMinutes: 10,
		PeakRate:    50,
		TroughRate:  10,
		ZipfS:       1.3,
		Seed:        42,
	}
}

// TwitterStream produces one mutation batch per tick: directed mention
// edges whose endpoints are created on first reference. It implements
// graph.Stream.
type TwitterStream struct {
	cfg      TwitterConfig
	rng      *rand.Rand
	zipf     *rand.Zipf // global celebrity sampler
	local    *rand.Zipf // within-community celebrity sampler
	commSize int
	tick     int
	ticks    int
	rates    []float64 // tweets/sec per tick, for plotting
}

// NewTwitterStream builds the stream; the rate curve is fixed up front so
// that experiments can plot it alongside the measured superstep times.
func NewTwitterStream(cfg TwitterConfig) *TwitterStream {
	if cfg.Users < 2 {
		cfg.Users = 2
	}
	if cfg.TickMinutes <= 0 {
		cfg.TickMinutes = 10
	}
	if cfg.Communities < 1 {
		cfg.Communities = 1
	}
	if cfg.Communities > cfg.Users {
		cfg.Communities = cfg.Users
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	commSize := cfg.Users / cfg.Communities
	if commSize < 1 {
		commSize = 1
	}
	s := &TwitterStream{
		cfg:      cfg,
		rng:      rng,
		zipf:     Zipf(rng, cfg.ZipfS, cfg.Users),
		local:    Zipf(rng, cfg.ZipfS, commSize),
		commSize: commSize,
		ticks:    int(cfg.Hours * 60 / cfg.TickMinutes),
	}
	s.rates = make([]float64, s.ticks)
	for i := range s.rates {
		s.rates[i] = s.rateAt(float64(i) * cfg.TickMinutes / 60)
	}
	return s
}

// rateAt evaluates the diurnal tweets/second curve at hour h: a sinusoid
// with its trough at 04:00 and peak at 16:00, plus small seeded noise.
func (s *TwitterStream) rateAt(h float64) float64 {
	phase := (h - 4) / 24 * 2 * math.Pi
	base := (1 - math.Cos(phase)) / 2 // 0 at 04:00, 1 at 16:00
	r := s.cfg.TroughRate + (s.cfg.PeakRate-s.cfg.TroughRate)*base
	r *= 1 + 0.08*(s.rng.Float64()-0.5)
	if r < 0 {
		r = 0
	}
	return r
}

// Rates returns the tweets/second value of every tick (the red line in
// Figure 8). The slice is the caller's to keep: it is copied out of the
// stream.
func (s *TwitterStream) Rates() []float64 { return append([]float64(nil), s.rates...) }

// NumTicks returns the total number of ticks the stream will produce.
func (s *TwitterStream) NumTicks() int { return s.ticks }

// Next emits the mention batch for the current tick, or nil when the day
// is over.
func (s *TwitterStream) Next() graph.Batch {
	if s.tick >= s.ticks {
		return nil
	}
	rate := s.rates[s.tick]
	s.tick++
	n := int(rate * s.cfg.TickMinutes * 60)
	batch := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		author := graph.VertexID(s.rng.Intn(s.cfg.Users))
		var target graph.VertexID
		if s.rng.Float64() < s.cfg.IntraProb {
			// In-community mention of a local celebrity.
			commStart := int(author) / s.commSize * s.commSize
			target = graph.VertexID(commStart + int(s.local.Uint64())%s.commSize)
		} else {
			target = graph.VertexID(s.zipf.Uint64())
		}
		if author == target {
			continue
		}
		batch = append(batch, graph.Mutation{Kind: graph.MutAddEdge, U: author, V: target})
	}
	return batch
}

// CommunityOf returns the community index of a user, for tests.
func (s *TwitterStream) CommunityOf(u graph.VertexID) int { return int(u) / s.commSize }

// Done reports whether the simulated day has been fully consumed.
func (s *TwitterStream) Done() bool { return s.tick >= s.ticks }

var _ graph.Stream = (*TwitterStream)(nil)

// CDRConfig parameterises the synthetic call-detail-record stream standing
// in for the paper's one-month European-operator dataset (21 M vertices,
// 132 M reciprocated ties, mean geodesic distance 9.4, 8 %/week additions,
// 4 %/week deletions, replayed with a ×15 speed-up).
//
// Real call graphs are sparse with pronounced social communities (family,
// workplace, town); the generator models them with subscriber communities:
// a call stays inside the caller's community with probability IntraProb,
// otherwise it reaches a globally popular (Zipf) subscriber.
type CDRConfig struct {
	BaseUsers    int     // population at stream start
	Communities  int     // number of subscriber communities
	IntraProb    float64 // probability a call stays in-community
	Weeks        int     // stream length
	TicksPerWeek int     // iteration granularity
	CallsPerTick int     // call events per tick
	AddPerWeek   float64 // fraction of users added per week (paper: 0.08)
	DelPerWeek   float64 // fraction of users deleted per week (paper: 0.04)
	InactiveTTL  int     // ticks of inactivity before removal (one week)
	ZipfS        float64 // call-popularity skew
	Seed         int64
}

// DefaultCDRConfig mirrors Figure 9's setting at laptop scale: 4 weeks,
// 8 %/week additions and 4 %/week inactivity-driven deletions.
func DefaultCDRConfig() CDRConfig {
	return CDRConfig{
		BaseUsers:    12000,
		Communities:  150,
		IntraProb:    0.85,
		Weeks:        4,
		TicksPerWeek: 28,
		CallsPerTick: 2500,
		AddPerWeek:   0.08,
		DelPerWeek:   0.04,
		InactiveTTL:  28,
		ZipfS:        1.2,
		Seed:         7,
	}
}

// CDRStream emits one batch of call edges per tick, adds new subscribers at
// the configured weekly rate, and removes subscribers that have been
// inactive for longer than the TTL ("removing them if they were inactive
// for more than one week"). It implements graph.Stream.
type CDRStream struct {
	cfg        CDRConfig
	rng        *rand.Rand
	tick       int
	ticks      int
	active     []graph.VertexID
	activeIdx  map[graph.VertexID]int
	lastActive map[graph.VertexID]int
	community  map[graph.VertexID]int
	members    [][]graph.VertexID // active members per community
	nextID     graph.VertexID
}

// NewCDRStream builds the stream with its initial subscriber population.
func NewCDRStream(cfg CDRConfig) *CDRStream {
	if cfg.BaseUsers < 2 {
		cfg.BaseUsers = 2
	}
	if cfg.TicksPerWeek <= 0 {
		cfg.TicksPerWeek = 28
	}
	if cfg.InactiveTTL <= 0 {
		cfg.InactiveTTL = cfg.TicksPerWeek
	}
	if cfg.Communities < 1 {
		cfg.Communities = 1
	}
	s := &CDRStream{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		ticks:      cfg.Weeks * cfg.TicksPerWeek,
		activeIdx:  make(map[graph.VertexID]int, cfg.BaseUsers),
		lastActive: make(map[graph.VertexID]int, cfg.BaseUsers),
		community:  make(map[graph.VertexID]int, cfg.BaseUsers),
		members:    make([][]graph.VertexID, cfg.Communities),
	}
	s.active = make([]graph.VertexID, 0, cfg.BaseUsers*2)
	for i := 0; i < cfg.BaseUsers; i++ {
		s.addUser()
	}
	return s
}

func (s *CDRStream) addUser() graph.VertexID {
	id := s.nextID
	s.nextID++
	s.activeIdx[id] = len(s.active)
	s.active = append(s.active, id)
	s.lastActive[id] = s.tick
	c := s.rng.Intn(s.cfg.Communities)
	s.community[id] = c
	s.members[c] = append(s.members[c], id)
	return id
}

func (s *CDRStream) removeUser(id graph.VertexID) {
	idx, ok := s.activeIdx[id]
	if !ok {
		return
	}
	last := len(s.active) - 1
	s.active[idx] = s.active[last]
	s.activeIdx[s.active[idx]] = idx
	s.active = s.active[:last]
	delete(s.activeIdx, id)
	delete(s.lastActive, id)
	// Drop from the community membership list.
	c := s.community[id]
	delete(s.community, id)
	m := s.members[c]
	for i, u := range m {
		if u == id {
			m[i] = m[len(m)-1]
			s.members[c] = m[:len(m)-1]
			break
		}
	}
}

// NumTicks returns the total number of ticks the stream will produce.
func (s *CDRStream) NumTicks() int { return s.ticks }

// Week returns the zero-based week the given tick belongs to.
func (s *CDRStream) Week(tick int) int { return tick / s.cfg.TicksPerWeek }

// Next emits the batch for the current tick: new subscribers, call edges,
// and inactivity removals.
func (s *CDRStream) Next() graph.Batch {
	if s.tick >= s.ticks {
		return nil
	}
	t := s.tick
	s.tick++
	var batch graph.Batch

	// Subscriber arrivals: AddPerWeek of the current population per week.
	arrivals := int(float64(len(s.active)) * s.cfg.AddPerWeek / float64(s.cfg.TicksPerWeek))
	if arrivals < 1 && s.rng.Float64() < float64(len(s.active))*s.cfg.AddPerWeek/float64(s.cfg.TicksPerWeek) {
		arrivals = 1
	}
	for i := 0; i < arrivals; i++ {
		id := s.addUser()
		batch = append(batch, graph.Mutation{Kind: graph.MutAddVertex, U: id})
	}

	// Call events: caller uniform over active; callee in-community with
	// probability IntraProb, else a globally popular (Zipf) subscriber.
	// The paper's ties are reciprocated, so the call graph is undirected.
	zipf := Zipf(s.rng, s.cfg.ZipfS, len(s.active))
	for i := 0; i < s.cfg.CallsPerTick; i++ {
		a := s.active[s.rng.Intn(len(s.active))]
		var b graph.VertexID
		if m := s.members[s.community[a]]; len(m) > 1 && s.rng.Float64() < s.cfg.IntraProb {
			b = m[s.rng.Intn(len(m))]
		} else {
			b = s.active[int(zipf.Uint64())%len(s.active)]
		}
		if a == b {
			continue
		}
		s.lastActive[a] = t
		s.lastActive[b] = t
		batch = append(batch, graph.Mutation{Kind: graph.MutAddEdge, U: a, V: b})
	}

	// Inactivity removals, capped near the configured weekly deletion rate.
	maxDel := int(float64(len(s.active)) * s.cfg.DelPerWeek / float64(s.cfg.TicksPerWeek))
	if maxDel < 1 {
		maxDel = 1
	}
	removed := 0
	for _, id := range append([]graph.VertexID(nil), s.active...) {
		if removed >= maxDel {
			break
		}
		if t-s.lastActive[id] > s.cfg.InactiveTTL {
			s.removeUser(id)
			batch = append(batch, graph.Mutation{Kind: graph.MutRemoveVertex, U: id})
			removed++
		}
	}
	return batch
}

// Done reports whether the simulated month has been fully consumed.
func (s *CDRStream) Done() bool { return s.tick >= s.ticks }

var _ graph.Stream = (*CDRStream)(nil)
