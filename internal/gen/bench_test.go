package gen

import "testing"

func BenchmarkMesh3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Cube3D(20)
	}
}

func BenchmarkHolmeKim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HolmeKim(5000, 6, 0.1, int64(i))
	}
}

func BenchmarkForestFire(b *testing.B) {
	g := Cube3D(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForestFireExpansion(g, 100, DefaultForestFire(), int64(i))
	}
}

func BenchmarkTwitterStreamTick(b *testing.B) {
	cfg := DefaultTwitterConfig()
	cfg.Users = 5000
	s := NewTwitterStream(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Done() {
			b.StopTimer()
			s = NewTwitterStream(cfg)
			b.StartTimer()
		}
		s.Next()
	}
}

func BenchmarkCDRStreamTick(b *testing.B) {
	cfg := DefaultCDRConfig()
	cfg.BaseUsers = 5000
	s := NewCDRStream(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Done() {
			b.StopTimer()
			s = NewCDRStream(cfg)
			b.StartTimer()
		}
		s.Next()
	}
}
