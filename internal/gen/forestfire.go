package gen

import (
	"math/rand"

	"xdgp/internal/graph"
)

// ForestFireConfig parameterises the Leskovec forest-fire growth model the
// paper uses to create dynamic extensions of its static graphs ("to mimic
// dynamic changes we employed a forest fire model").
type ForestFireConfig struct {
	// Forward is the forward-burning probability; the number of links a
	// burning step spreads over is geometric with mean Forward/(1−Forward).
	// The classic value producing realistic densification is ≈ 0.35.
	Forward float64
	// MaxBurn caps vertices burned per new arrival, bounding worst-case
	// work on dense graphs.
	MaxBurn int
}

// DefaultForestFire returns the configuration used by the biomedical
// experiment: forward probability 0.35, burn cap 100.
func DefaultForestFire() ForestFireConfig {
	return ForestFireConfig{Forward: 0.35, MaxBurn: 100}
}

// ForestFireExpansion produces a mutation batch that grows g by numNew
// vertices following the forest-fire model, without modifying g. New
// vertices receive IDs starting at g.NumSlots() so the batch can be applied
// later (or streamed into the BSP engine) deterministically. Edges created
// by the expansion may attach to other new vertices, as in the original
// model. This is the "huge increase in the number of new vertices and
// edges" injected in the paper's Figure 7(b): a 10 % forest-fire expansion.
func ForestFireExpansion(g *graph.Graph, numNew int, cfg ForestFireConfig, seed int64) graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	if cfg.MaxBurn <= 0 {
		cfg.MaxBurn = 100
	}
	if cfg.Forward <= 0 || cfg.Forward >= 1 {
		cfg.Forward = 0.35
	}

	existing := g.Vertices()
	if len(existing) == 0 || numNew <= 0 {
		return nil
	}
	// overlay holds adjacency added by this expansion (both for new
	// vertices and extra edges incident to old ones).
	overlay := make(map[graph.VertexID][]graph.VertexID)
	neighbors := func(v graph.VertexID) []graph.VertexID {
		base := g.Neighbors(v)
		extra := overlay[v]
		if len(extra) == 0 {
			return base
		}
		all := make([]graph.VertexID, 0, len(base)+len(extra))
		all = append(all, base...)
		all = append(all, extra...)
		return all
	}
	addOverlay := func(u, v graph.VertexID) {
		overlay[u] = append(overlay[u], v)
		overlay[v] = append(overlay[v], u)
	}

	batch := make(graph.Batch, 0, numNew*3)
	nextID := graph.VertexID(g.NumSlots())
	newIDs := make([]graph.VertexID, 0, numNew)

	for i := 0; i < numNew; i++ {
		v := nextID
		nextID++
		batch = append(batch, graph.Mutation{Kind: graph.MutAddVertex, U: v})

		// Ambassador: uniform over old + previously added vertices.
		var amb graph.VertexID
		if len(newIDs) > 0 && rng.Intn(len(existing)+len(newIDs)) >= len(existing) {
			amb = newIDs[rng.Intn(len(newIDs))]
		} else {
			amb = existing[rng.Intn(len(existing))]
		}

		burned := map[graph.VertexID]bool{v: true}
		frontier := []graph.VertexID{amb}
		burnCount := 0
		for len(frontier) > 0 && burnCount < cfg.MaxBurn {
			w := frontier[0]
			frontier = frontier[1:]
			if burned[w] {
				continue
			}
			burned[w] = true
			burnCount++
			batch = append(batch, graph.Mutation{Kind: graph.MutAddEdge, U: v, V: w})
			addOverlay(v, w)
			// Spread: geometric number of unburned neighbours of w.
			spread := 0
			for rng.Float64() < cfg.Forward {
				spread++
			}
			nbrs := neighbors(w)
			for s := 0; s < spread && len(nbrs) > 0; s++ {
				cand := nbrs[rng.Intn(len(nbrs))]
				if !burned[cand] {
					frontier = append(frontier, cand)
				}
			}
		}
		newIDs = append(newIDs, v)
	}
	return batch
}
