// Package gen contains deterministic, seeded generators for every dataset
// family the paper evaluates on: 3-d cubic finite-element meshes (cardiac
// tissue), 2-d triangulated FEM meshes (3elt/4elt stand-ins), Holme–Kim
// power-law-cluster graphs (the networkX generator the paper uses),
// directed scale-free graphs (wiki-Vote / epinions / uk-2007 stand-ins),
// forest-fire expansions for dynamic bursts, and the synthetic Twitter and
// call-detail-record event streams used by the system experiments.
package gen

import "xdgp/internal/graph"

// Mesh3D builds an nx × ny × nz cubic lattice with 6-neighbourhood
// connectivity, the structure of the paper's synthetic cardiac FEMs
// ("3d regular cubic structure, modelling the electric connections between
// heart cells"). Vertex (x,y,z) has ID x + nx·(y + ny·z); the edge count is
// (nx−1)·ny·nz + nx·(ny−1)·nz + nx·ny·(nz−1).
func Mesh3D(nx, ny, nz int) *graph.Graph {
	n := nx * ny * nz
	g := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	id := func(x, y, z int) graph.VertexID {
		return graph.VertexID(x + nx*(y+ny*z))
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					g.AddEdge(id(x, y, z), id(x+1, y, z))
				}
				if y+1 < ny {
					g.AddEdge(id(x, y, z), id(x, y+1, z))
				}
				if z+1 < nz {
					g.AddEdge(id(x, y, z), id(x, y, z+1))
				}
			}
		}
	}
	return g
}

// Cube3D builds an n × n × n Mesh3D; Cube3D(40) is the paper's "64kcube"
// (64 000 vertices, 187 200 edges).
func Cube3D(n int) *graph.Graph { return Mesh3D(n, n, n) }

// Mesh2D builds a w × h grid triangulated with one diagonal per cell,
// giving the irregular-triangle character of the Walshaw 2-d FEM meshes
// (3elt, 4elt) that the paper includes. Vertex (x,y) has ID x + w·y; the
// edge count is (w−1)·h + w·(h−1) + (w−1)·(h−1).
func Mesh2D(w, h int) *graph.Graph {
	n := w * h
	g := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	id := func(x, y int) graph.VertexID { return graph.VertexID(x + w*y) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h {
				g.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	return g
}

// MeshFamily returns a 3-d mesh with approximately n vertices, keeping the
// aspect ratio cubic, used by the paper's scalability sweep (Figure 6,
// meshes from 1 000 to 300 000 vertices). The exact vertex count is the
// largest product a·b·c ≤ n with near-equal factors.
func MeshFamily(n int) *graph.Graph {
	side := 1
	for (side+1)*(side+1)*(side+1) <= n {
		side++
	}
	// Grow the last dimensions while staying ≤ n to land closer to n.
	nx, ny, nz := side, side, side
	for (nx+1)*ny*nz <= n {
		nx++
	}
	for nx*(ny+1)*nz <= n {
		ny++
	}
	return Mesh3D(nx, ny, nz)
}
