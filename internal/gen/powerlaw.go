package gen

import (
	"math"
	"math/rand"

	"xdgp/internal/graph"
)

// BarabasiAlbert builds an undirected preferential-attachment graph with n
// vertices where every new vertex attaches m edges to existing vertices
// chosen proportionally to degree. It is the base of the power-law family.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewUndirected(n)
	// repeated holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling — the standard BA trick.
	repeated := make([]graph.VertexID, 0, 2*m*n)
	// Seed clique of m+1 vertices.
	for i := 0; i <= m; i++ {
		g.AddVertex()
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if g.AddEdge(graph.VertexID(i), graph.VertexID(j)) {
				repeated = append(repeated, graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	for g.NumVertices() < n {
		v := g.AddVertex()
		added := 0
		for tries := 0; added < m && tries < 50*m; tries++ {
			t := repeated[rng.Intn(len(repeated))]
			if g.AddEdge(v, t) {
				repeated = append(repeated, v, t)
				added++
			}
		}
	}
	g.SortAdjacency()
	return g
}

// HolmeKim builds a power-law-cluster graph following Holme & Kim (2002),
// the algorithm behind networkX's powerlaw_cluster_graph that the paper
// uses for its synthetic power-law datasets: preferential attachment with
// probability (1−p) and triad formation (closing a triangle with a
// neighbour of the previous target) with probability p. The paper's
// configuration is average degree D = log|V| — i.e. m ≈ D/2 — and p = 0.1.
func HolmeKim(n, m int, p float64, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewUndirected(n)
	repeated := make([]graph.VertexID, 0, 2*m*n)
	for i := 0; i <= m; i++ {
		g.AddVertex()
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if g.AddEdge(graph.VertexID(i), graph.VertexID(j)) {
				repeated = append(repeated, graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	for g.NumVertices() < n {
		v := g.AddVertex()
		var prev graph.VertexID = graph.NoVertex
		added := 0
		for tries := 0; added < m && tries < 50*m; tries++ {
			var t graph.VertexID
			if prev != graph.NoVertex && rng.Float64() < p {
				// Triad formation: attach to a uniform neighbour of the
				// previous preferential-attachment target.
				nbrs := g.Neighbors(prev)
				if len(nbrs) == 0 {
					continue
				}
				t = nbrs[rng.Intn(len(nbrs))]
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if g.AddEdge(v, t) {
				repeated = append(repeated, v, t)
				prev = t
				added++
			}
		}
	}
	g.SortAdjacency()
	return g
}

// PowerLawForSize builds the Holme–Kim graph the paper's scalability sweep
// uses: n vertices with intended average degree D = ln n (so m = D/2,
// minimum 2) and triad probability 0.1.
func PowerLawForSize(n int, seed int64) *graph.Graph {
	m := int(math.Round(math.Log(float64(n)) / 2))
	if m < 2 {
		m = 2
	}
	return HolmeKim(n, m, 0.1, seed)
}

// DirectedScaleFree builds a directed graph with power-law in-degree by
// preferential attachment: each new vertex emits outDeg edges (drawn
// geometrically with the given mean, minimum 1) towards targets sampled
// proportionally to in-degree + 1. It provides the wiki-Vote, epinions and
// uk-2007 stand-ins as well as the mention/call graph bases for the system
// experiments.
func DirectedScaleFree(n int, meanOutDeg float64, seed int64) *graph.Graph {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDirected(n)
	repeated := make([]graph.VertexID, 0, int(meanOutDeg)*n+n)
	v0 := g.AddVertex()
	repeated = append(repeated, v0)
	for g.NumVertices() < n {
		v := g.AddVertex()
		out := geometric(rng, meanOutDeg)
		for e := 0; e < out; e++ {
			t := repeated[rng.Intn(len(repeated))]
			if g.AddEdge(v, t) {
				repeated = append(repeated, t)
			}
		}
		// Every vertex enters the target pool once so new vertices can be
		// cited too (in-degree + 1 smoothing).
		repeated = append(repeated, v)
	}
	g.SortAdjacency()
	return g
}

// geometric samples a geometric variate with the given mean, minimum 1.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Geometric on {1,2,...} with success probability 1/mean.
	p := 1 / mean
	u := rng.Float64()
	k := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	if k > 1000 {
		k = 1000
	}
	return k
}

// Zipf returns a Zipf sampler over {0..n−1} with exponent s ≥ 1, used to
// pick users in the Twitter and CDR streams (a few celebrities receive
// most mentions/calls).
func Zipf(rng *rand.Rand, s float64, n int) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.01
	}
	return rand.NewZipf(rng, s, 1, uint64(n-1))
}
