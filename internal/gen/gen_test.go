package gen

import (
	"testing"
	"testing/quick"

	"xdgp/internal/graph"
)

func TestMesh3DSizes(t *testing.T) {
	cases := []struct {
		nx, ny, nz, wantV, wantE int
		name                     string
	}{
		{10, 10, 100, 10000, 27900, "1e4"},     // paper Table 1 row "1e4"
		{40, 40, 40, 64000, 187200, "64kcube"}, // paper Table 1 row "64kcube"
		{3, 3, 3, 27, 54, "tiny"},
		{1, 1, 5, 5, 4, "path"},
	}
	for _, c := range cases {
		g := Mesh3D(c.nx, c.ny, c.nz)
		if g.NumVertices() != c.wantV {
			t.Errorf("%s: |V| = %d, want %d", c.name, g.NumVertices(), c.wantV)
		}
		if g.NumEdges() != c.wantE {
			t.Errorf("%s: |E| = %d, want %d", c.name, g.NumEdges(), c.wantE)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestMesh3DDegreeBounds(t *testing.T) {
	g := Cube3D(5)
	g.ForEachVertex(func(v graph.VertexID) {
		d := g.Degree(v)
		if d < 3 || d > 6 {
			t.Fatalf("cube vertex %d has degree %d, want 3..6", v, d)
		}
	})
	if g.MaxDegree() != 6 {
		t.Fatalf("MaxDegree = %d, want 6", g.MaxDegree())
	}
}

func TestMesh2DSizes(t *testing.T) {
	g := Mesh2D(4, 3)
	// edges: (3·3 horizontal) + (4·2 vertical) + (3·2 diagonal) = 23
	if g.NumVertices() != 12 || g.NumEdges() != 23 {
		t.Fatalf("got |V|=%d |E|=%d, want 12/23", g.NumVertices(), g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMesh2DStandInsCloseToPaper(t *testing.T) {
	// The 3elt/4elt stand-ins must land within 2 % of the published sizes.
	for _, name := range []string{"3elt", "4elt"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Build(1)
		if dv := relErr(g.NumVertices(), d.PaperV); dv > 0.02 {
			t.Errorf("%s: |V|=%d vs paper %d (%.1f%% off)", name, g.NumVertices(), d.PaperV, dv*100)
		}
		if de := relErr(g.NumEdges(), d.PaperE); de > 0.02 {
			t.Errorf("%s: |E|=%d vs paper %d (%.1f%% off)", name, g.NumEdges(), d.PaperE, de*100)
		}
	}
}

func relErr(got, want int) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

func TestMeshFamilyApproximatesTarget(t *testing.T) {
	for _, n := range []int{1000, 3000, 9900, 29700, 99000} {
		g := MeshFamily(n)
		if g.NumVertices() > n {
			t.Errorf("MeshFamily(%d) = %d vertices, exceeds target", n, g.NumVertices())
		}
		if float64(g.NumVertices()) < 0.7*float64(n) {
			t.Errorf("MeshFamily(%d) = %d vertices, too far below target", n, g.NumVertices())
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 1)
	if g.NumVertices() != 500 {
		t.Fatalf("|V| = %d, want 500", g.NumVertices())
	}
	// Each non-seed vertex adds m edges: |E| ≈ m(n − m − 1) + seed clique.
	wantMin := 3 * (500 - 4)
	if g.NumEdges() < wantMin {
		t.Fatalf("|E| = %d, want ≥ %d", g.NumEdges(), wantMin)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(200, 2, 7)
	b := BarabasiAlbert(200, 2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	diff := false
	a.ForEachEdge(func(u, v graph.VertexID) {
		if !b.HasEdge(u, v) {
			diff = true
		}
	})
	if diff {
		t.Fatal("same seed must give identical edge sets")
	}
}

func TestHolmeKimSizesAndSkew(t *testing.T) {
	g := HolmeKim(2000, 5, 0.1, 3)
	if g.NumVertices() != 2000 {
		t.Fatalf("|V| = %d, want 2000", g.NumVertices())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Power-law graphs have hubs: max degree far above the average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("max degree %d vs avg %.1f: no hub structure", g.MaxDegree(), g.AvgDegree())
	}
}

func TestHolmeKimTriadFormationRaisesClustering(t *testing.T) {
	// With strong triad formation the graph must contain many triangles;
	// compare against the pure-BA variant on the same size.
	triads := triangleCount(HolmeKim(800, 4, 0.9, 5))
	noTriads := triangleCount(HolmeKim(800, 4, 0.0, 5))
	if triads <= noTriads {
		t.Fatalf("triad formation did not raise triangles: %d vs %d", triads, noTriads)
	}
}

func triangleCount(g *graph.Graph) int {
	count := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		nv := g.Neighbors(v)
		set := make(map[graph.VertexID]bool, len(nv))
		for _, w := range nv {
			set[w] = true
		}
		for _, w := range g.Neighbors(u) {
			if set[w] {
				count++
			}
		}
	})
	return count / 3
}

func TestPowerLawForSize(t *testing.T) {
	g := PowerLawForSize(1000, 1)
	// D = ln(1000) ≈ 6.9 → m = 3..4 → avg degree ≈ 7.
	if g.AvgDegree() < 4 || g.AvgDegree() > 10 {
		t.Fatalf("avg degree %.1f outside expected band", g.AvgDegree())
	}
}

func TestDirectedScaleFree(t *testing.T) {
	g := DirectedScaleFree(1000, 5, 2)
	if !g.Directed() {
		t.Fatal("graph must be directed")
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("|V| = %d, want 1000", g.NumVertices())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mean out-degree should approximate the configured value.
	avgOut := float64(g.NumEdges()) / 1000
	if avgOut < 2.5 || avgOut > 8 {
		t.Fatalf("avg out-degree %.1f, want ≈5", avgOut)
	}
	// In-degree must be skewed (preferential attachment).
	maxIn := 0
	g.ForEachVertex(func(v graph.VertexID) {
		if d := g.InDegree(v); d > maxIn {
			maxIn = d
		}
	})
	if float64(maxIn) < 5*avgOut {
		t.Fatalf("max in-degree %d shows no preferential attachment", maxIn)
	}
}

func TestGeometricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rngGraph := BarabasiAlbert(10, 2, seed) // cheap way to burn the seed meaningfully
		_ = rngGraph
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestForestFireExpansion(t *testing.T) {
	g := Cube3D(6) // 216 vertices
	before := g.NumVertices()
	beforeSlots := g.NumSlots()
	batch := ForestFireExpansion(g, 20, DefaultForestFire(), 3)
	if batch.NumAdds() != 20 {
		t.Fatalf("batch adds %d vertices, want 20", batch.NumAdds())
	}
	if batch.NumEdgeAdds() < 20 {
		t.Fatalf("each new vertex must link at least once, got %d edges", batch.NumEdgeAdds())
	}
	// Generation must not mutate the input graph.
	if g.NumVertices() != before {
		t.Fatal("ForestFireExpansion mutated the graph")
	}
	g.Apply(batch)
	if g.NumVertices() != before+20 {
		t.Fatalf("after apply |V| = %d, want %d", g.NumVertices(), before+20)
	}
	// New IDs start at the old slot count (deterministic placement).
	if !g.Has(graph.VertexID(beforeSlots)) {
		t.Fatal("first new vertex should be at the old slot boundary")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestFireEmptyInputs(t *testing.T) {
	g := graph.NewUndirected(0)
	if b := ForestFireExpansion(g, 5, DefaultForestFire(), 1); b != nil {
		t.Fatal("expansion of empty graph must be nil")
	}
	g2 := Cube3D(3)
	if b := ForestFireExpansion(g2, 0, DefaultForestFire(), 1); b != nil {
		t.Fatal("zero-vertex expansion must be nil")
	}
}

func TestForestFireDeterminism(t *testing.T) {
	g := Cube3D(5)
	b1 := ForestFireExpansion(g, 10, DefaultForestFire(), 9)
	b2 := ForestFireExpansion(g, 10, DefaultForestFire(), 9)
	if len(b1) != len(b2) {
		t.Fatalf("same seed, different batch sizes: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("batches diverge at %d: %v vs %v", i, b1[i], b2[i])
		}
	}
}
