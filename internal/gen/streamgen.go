package gen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"xdgp/internal/graph"
)

// This file implements streaming edge-list generation: edges go straight
// to the output writer as they are produced, without materialising a
// graph.Graph. That turns cmd/gengraph's memory footprint for an n-vertex
// mesh from O(n + m) into O(1) — the regime the 10M-vertex nightly
// scenario generates in — and into O(m) vertex-endpoint words (no
// adjacency, no dedup tables) for preferential attachment.

// StreamMesh3D writes the nx × ny × nz cubic lattice of Mesh3D as an edge
// list, byte-identical to Mesh3D(...) followed by WriteEdgeList: the same
// header comment, the same u<v edge order. Memory use is O(1): vertex IDs
// and edges are pure index arithmetic.
func StreamMesh3D(w io.Writer, nx, ny, nz int) error {
	if nx < 1 || ny < 1 || nz < 1 {
		return fmt.Errorf("gen: mesh dimensions must be ≥ 1, got %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	m := (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d directed false\n", n, m); err != nil {
		return err
	}
	// Vertex (x,y,z) has ID x + nx·(y + ny·z); iterating IDs ascending and
	// emitting the +x, +y, +z neighbours in that order reproduces
	// WriteEdgeList's (u < v, ascending) visit order exactly.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				id := x + nx*(y+ny*z)
				if x+1 < nx {
					fmt.Fprintf(bw, "%d %d\n", id, id+1)
				}
				if y+1 < ny {
					fmt.Fprintf(bw, "%d %d\n", id, id+nx)
				}
				if z+1 < nz {
					fmt.Fprintf(bw, "%d %d\n", id, id+nx*ny)
				}
			}
		}
	}
	if m == 0 {
		// Degenerate lattices (all dimensions 1) have isolated vertices;
		// WriteEdgeList emits them as single-field lines so a round trip
		// preserves them.
		for id := 0; id < n; id++ {
			fmt.Fprintf(bw, "%d\n", id)
		}
	}
	return bw.Flush()
}

// StreamBarabasiAlbert writes an undirected preferential-attachment graph
// with n vertices and m attachments per new vertex as an edge list, in
// generation order. The edge set is identical to BarabasiAlbert(n, m,
// seed) — the same RNG stream drives the same attachment choices — but no
// adjacency structure is built: the only state is the degree-proportional
// endpoint pool (two vertex IDs per edge) plus a per-round duplicate set
// bounded by m. Edge count is reported in a trailing comment, since it is
// only known once generation finishes.
func StreamBarabasiAlbert(w io.Writer, n, m int, seed int64) error {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# barabasi-albert n %d m %d seed %d\n", n, m, seed); err != nil {
		return err
	}
	repeated := make([]graph.VertexID, 0, 2*m*n)
	edges := 0
	emit := func(u, v graph.VertexID) {
		fmt.Fprintf(bw, "%d %d\n", u, v)
		repeated = append(repeated, u, v)
		edges++
	}
	// Seed clique of m+1 vertices, matching BarabasiAlbert.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			emit(graph.VertexID(i), graph.VertexID(j))
		}
	}
	round := make(map[graph.VertexID]bool, m)
	for next := m + 1; next < n; next++ {
		v := graph.VertexID(next)
		for k := range round {
			delete(round, k)
		}
		added := 0
		for tries := 0; added < m && tries < 50*m; tries++ {
			t := repeated[rng.Intn(len(repeated))]
			// BarabasiAlbert relies on AddEdge rejecting self-loops and
			// duplicates; v's only possible duplicates are this round's
			// picks (v had no earlier edges), so a bounded set suffices.
			if t == v || round[t] {
				continue
			}
			round[t] = true
			emit(v, t)
			added++
		}
	}
	fmt.Fprintf(bw, "# streamed vertices %d edges %d\n", n, edges)
	return bw.Flush()
}
