package gen

import (
	"fmt"

	"xdgp/internal/graph"
)

// Dataset describes one row of the paper's Table 1 and how this repository
// regenerates it. PaperV/PaperE are the published sizes; Build constructs
// the (stand-in) graph. Scale documents any size substitution for datasets
// that are proprietary, download-only, or too large for a laptop (see
// DESIGN.md §5).
type Dataset struct {
	Name   string
	Type   string // "FEM" or "pwlaw"
	Source string // paper's source column
	PaperV int
	PaperE int
	Scale  string // empty when reproduced at full published size
	Build  func(seed int64) *graph.Graph
}

// Registry returns every Table 1 dataset in the paper's order. Builds are
// deterministic for a given seed; synthetic FEMs ignore the seed entirely.
func Registry() []Dataset {
	return []Dataset{
		{
			Name: "1e4", Type: "FEM", Source: "synth",
			PaperV: 10000, PaperE: 27900,
			Build: func(int64) *graph.Graph { return Mesh3D(10, 10, 100) },
		},
		{
			Name: "64kcube", Type: "FEM", Source: "synth",
			PaperV: 64000, PaperE: 187200,
			Build: func(int64) *graph.Graph { return Cube3D(40) },
		},
		{
			Name: "1e6", Type: "FEM", Source: "synth",
			PaperV: 1000000, PaperE: 2970000,
			Build: func(int64) *graph.Graph { return Cube3D(100) },
		},
		{
			Name: "1e8", Type: "FEM", Source: "synth",
			PaperV: 100000000, PaperE: 297000000,
			Scale: "built at 1:100 (1e6 vertices); 1e8 needs a 3 TB cluster",
			Build: func(int64) *graph.Graph { return Cube3D(100) },
		},
		{
			Name: "3elt", Type: "FEM", Source: "[34] Walshaw archive",
			PaperV: 4720, PaperE: 13722,
			Scale: "triangulated-mesh stand-in matched to |V|,|E| (offline)",
			Build: func(int64) *graph.Graph { return Mesh2D(25, 189) },
		},
		{
			Name: "4elt", Type: "FEM", Source: "[34] Walshaw archive",
			PaperV: 15606, PaperE: 45878,
			Scale: "triangulated-mesh stand-in matched to |V|,|E| (offline)",
			Build: func(int64) *graph.Graph { return Mesh2D(36, 434) },
		},
		{
			Name: "plc1000", Type: "pwlaw", Source: "synth",
			PaperV: 1000, PaperE: 9879,
			Build: func(seed int64) *graph.Graph { return HolmeKim(1000, 10, 0.1, seed) },
		},
		{
			Name: "plc10000", Type: "pwlaw", Source: "synth",
			PaperV: 10000, PaperE: 129774,
			Build: func(seed int64) *graph.Graph { return HolmeKim(10000, 13, 0.1, seed) },
		},
		{
			Name: "plc50000", Type: "pwlaw", Source: "synth",
			PaperV: 50000, PaperE: 1249061,
			Build: func(seed int64) *graph.Graph { return HolmeKim(50000, 25, 0.1, seed) },
		},
		{
			Name: "wikivote", Type: "pwlaw", Source: "[19] SNAP",
			PaperV: 7115, PaperE: 103689,
			Scale: "Holme–Kim stand-in matched to |V|,|E| (offline)",
			Build: func(seed int64) *graph.Graph { return HolmeKim(7115, 15, 0.1, seed) },
		},
		{
			Name: "epinion", Type: "pwlaw", Source: "[30] trust network",
			PaperV: 75879, PaperE: 508837,
			Scale: "Holme–Kim stand-in matched to |V|,|E| (offline)",
			Build: func(seed int64) *graph.Graph { return HolmeKim(75879, 7, 0.1, seed) },
		},
		{
			Name: "uk-2007-05-u", Type: "pwlaw", Source: "[2] LAW",
			PaperV: 1000000, PaperE: 41247159,
			Scale: "built at 1:20 (50k vertices, same avg degree 82)",
			Build: func(seed int64) *graph.Graph { return HolmeKim(50000, 41, 0.1, seed) },
		},
	}
}

// ByName returns the registry entry with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Registry() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Names lists every dataset name in registry order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, d := range reg {
		names[i] = d.Name
	}
	return names
}
