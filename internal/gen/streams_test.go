package gen

import (
	"testing"

	"xdgp/internal/graph"
)

func TestTwitterStreamShape(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.Users = 1000
	s := NewTwitterStream(cfg)
	if s.NumTicks() != 144 { // 24h in 10-minute windows
		t.Fatalf("NumTicks = %d, want 144", s.NumTicks())
	}
	rates := s.Rates()
	if len(rates) != 144 {
		t.Fatalf("rates length %d", len(rates))
	}
	// Diurnal shape: 16:00 (tick 96) must be busier than 04:00 (tick 0).
	if rates[96] <= rates[0] {
		t.Fatalf("peak rate %.1f not above trough %.1f", rates[96], rates[0])
	}
	for _, r := range rates {
		if r < 0 || r > cfg.PeakRate*1.2 {
			t.Fatalf("rate %.1f out of range", r)
		}
	}
}

func TestTwitterStreamProducesMentions(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.Users = 500
	cfg.Hours = 1
	s := NewTwitterStream(cfg)
	g := graph.NewDirected(0)
	total := 0
	for !s.Done() {
		b := s.Next()
		total += len(b)
		g.Apply(b)
	}
	if total == 0 {
		t.Fatal("stream produced no mentions")
	}
	if g.NumEdges() == 0 || g.NumVertices() == 0 {
		t.Fatal("applying stream left graph empty")
	}
	if g.NumVertices() > cfg.Users {
		t.Fatalf("vertices %d exceed user population %d", g.NumVertices(), cfg.Users)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream must return nil")
	}
}

func TestTwitterStreamDeterminism(t *testing.T) {
	a := NewTwitterStream(DefaultTwitterConfig())
	b := NewTwitterStream(DefaultTwitterConfig())
	ba, bb := a.Next(), b.Next()
	if len(ba) != len(bb) {
		t.Fatalf("same seed produced different batch sizes: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same seed produced different batches")
		}
	}
}

func TestCDRStreamChurn(t *testing.T) {
	cfg := DefaultCDRConfig()
	cfg.BaseUsers = 2000
	cfg.CallsPerTick = 400
	s := NewCDRStream(cfg)
	g := graph.NewUndirected(0)
	adds, dels := 0, 0
	for !s.Done() {
		b := s.Next()
		for _, mu := range b {
			switch mu.Kind {
			case graph.MutAddVertex:
				adds++
			case graph.MutRemoveVertex:
				dels++
			}
		}
		g.Apply(b)
	}
	if adds == 0 {
		t.Fatal("CDR stream never added subscribers")
	}
	if dels == 0 {
		t.Fatal("CDR stream never removed inactive subscribers")
	}
	// Weekly addition rate ≈ 8 %: over 4 weeks roughly a third of the base.
	if adds < cfg.BaseUsers/6 || adds > cfg.BaseUsers {
		t.Fatalf("adds = %d, outside plausible band for 8%%/week over 4 weeks", adds)
	}
	if dels >= adds*3 {
		t.Fatalf("dels = %d implausibly high vs adds = %d", dels, adds)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCDRStreamWeekIndex(t *testing.T) {
	cfg := DefaultCDRConfig()
	s := NewCDRStream(cfg)
	if s.Week(0) != 0 {
		t.Fatal("tick 0 is week 0")
	}
	if s.Week(cfg.TicksPerWeek) != 1 {
		t.Fatal("first tick of second week must be week 1")
	}
	if s.NumTicks() != cfg.Weeks*cfg.TicksPerWeek {
		t.Fatalf("NumTicks = %d", s.NumTicks())
	}
}

func TestCDRStreamRemovedUsersStayRemoved(t *testing.T) {
	cfg := DefaultCDRConfig()
	cfg.BaseUsers = 300
	cfg.CallsPerTick = 30
	s := NewCDRStream(cfg)
	removed := make(map[graph.VertexID]bool)
	for !s.Done() {
		for _, mu := range s.Next() {
			switch mu.Kind {
			case graph.MutRemoveVertex:
				removed[mu.U] = true
			case graph.MutAddEdge:
				if removed[mu.U] || removed[mu.V] {
					t.Fatalf("call issued for removed subscriber %v", mu)
				}
			}
		}
	}
}

func TestDatasetRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry has %d datasets, Table 1 lists 12", len(reg))
	}
	seen := make(map[string]bool)
	for _, d := range reg {
		if seen[d.Name] {
			t.Errorf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.Type != "FEM" && d.Type != "pwlaw" {
			t.Errorf("%s: unknown type %q", d.Name, d.Type)
		}
		if d.PaperV <= 0 || d.PaperE <= 0 {
			t.Errorf("%s: missing published sizes", d.Name)
		}
	}
	if _, err := ByName("64kcube"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if len(Names()) != len(reg) {
		t.Fatal("Names() length mismatch")
	}
}

func TestDatasetBuildsMatchPaperWhereFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale dataset builds are slow")
	}
	for _, name := range []string{"1e4", "64kcube", "plc1000", "plc10000"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Build(1)
		if d.Scale == "" && g.NumVertices() != d.PaperV {
			t.Errorf("%s: |V| = %d, want %d", name, g.NumVertices(), d.PaperV)
		}
		// Edge counts for the synthetic power-law rows land within 2 %.
		if de := relErr(g.NumEdges(), d.PaperE); de > 0.02 {
			t.Errorf("%s: |E| = %d vs paper %d (%.1f%% off)", name, g.NumEdges(), d.PaperE, de*100)
		}
	}
}

func TestTwitterStreamCommunityStructure(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.Users = 2000
	cfg.Hours = 2
	s := NewTwitterStream(cfg)
	intra, total := 0, 0
	for !s.Done() {
		for _, mu := range s.Next() {
			if mu.Kind != graph.MutAddEdge {
				continue
			}
			total++
			if s.CommunityOf(mu.U) == s.CommunityOf(mu.V) {
				intra++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mentions produced")
	}
	// IntraProb is 0.85; global-celebrity picks can also land in-community,
	// so the measured fraction must be at least ≈0.75.
	frac := float64(intra) / float64(total)
	if frac < 0.7 {
		t.Fatalf("intra-community mention fraction %.2f, want ≥0.7 (conversational locality)", frac)
	}
}

func TestCDRStreamCommunityStructure(t *testing.T) {
	cfg := DefaultCDRConfig()
	cfg.BaseUsers = 2000
	cfg.CallsPerTick = 500
	cfg.Weeks = 1
	s := NewCDRStream(cfg)
	intra, total := 0, 0
	for !s.Done() {
		for _, mu := range s.Next() {
			if mu.Kind != graph.MutAddEdge {
				continue
			}
			total++
			if s.community[mu.U] == s.community[mu.V] {
				intra++
			}
		}
	}
	if total == 0 {
		t.Fatal("no calls produced")
	}
	frac := float64(intra) / float64(total)
	if frac < 0.7 {
		t.Fatalf("intra-community call fraction %.2f, want ≥0.7 (social locality)", frac)
	}
}

func TestTwitterRatesDefensiveCopy(t *testing.T) {
	s := NewTwitterStream(DefaultTwitterConfig())
	rates := s.Rates()
	if len(rates) == 0 {
		t.Fatal("no rates")
	}
	orig := rates[0]
	rates[0] = -1
	if s.Rates()[0] != orig {
		t.Fatal("Rates leaked the stream's internal slice")
	}
}
