package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunQuickIncremental(t *testing.T) {
	if err := run([]string{"-run", "fig7", "-quick", "-incremental"}); err != nil {
		t.Fatal(err)
	}
}
