// Command experiments regenerates the paper's tables and figures. Each
// experiment prints the rows/series the paper reports, plus shape notes.
//
// Examples:
//
//	experiments -run all            # every table and figure, full scale
//	experiments -run fig4           # one experiment
//	experiments -run fig7 -quick    # miniature (seconds, CI-friendly)
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xdgp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID    = fs.String("run", "all", "experiment id (or 'all'): "+strings.Join(experiments.IDs(), ", "))
		quick    = fs.Bool("quick", false, "miniature datasets and few repetitions")
		reps     = fs.Int("reps", 0, "repetitions (0 = experiment default, the paper uses 10)")
		seed     = fs.Int64("seed", 1, "base random seed")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		parallel = fs.Int("parallel", 0, "shards for the quality experiments' vertex sweep (0 = paper-exact sequential)")
		workers  = fs.Int("workers", 0, "compute goroutines per BSP engine (0 = one per partition)")
		increm   = fs.Bool("incremental", false, "active-set scheduler for the heuristic and the BSP service (full sweep when off)")
		app      = fs.String("app", "", "filter the analytics-suite experiment to one streaming program: cc, sssp or pagerank (empty = full matrix)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	opt := experiments.Options{
		Quick: *quick, Reps: *reps, Seed: *seed, Out: os.Stdout,
		Parallelism: *parallel, Workers: *workers, Incremental: *increm,
		App: *app,
	}
	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		if _, err := experiments.Run(id, opt); err != nil {
			return err
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
