package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDatasetEndToEnd(t *testing.T) {
	err := run([]string{"-dataset", "plc1000", "-k", "4", "-initial", "RND", "-max-iterations", "60", "-metis"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEdgeListInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path, "-k", "2", "-initial", "HSH", "-max-iterations", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetisInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.graph")
	if err := os.WriteFile(path, []byte("3 3\n2 3\n1 3\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path, "-format", "metis", "-k", "2", "-max-iterations", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // no input
		{"-dataset", "nope"}, // unknown dataset
		{"-dataset", "plc1000", "-initial", "XXX"},  // unknown strategy
		{"-dataset", "plc1000", "-input", "x"},      // both sources
		{"-input", "/nonexistent/file"},             // missing file
		{"-input", "/dev/null", "-format", "bogus"}, // unknown format
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunIncremental(t *testing.T) {
	err := run([]string{"-dataset", "plc1000", "-k", "4", "-initial", "HSH", "-max-iterations", "200", "-incremental"})
	if err != nil {
		t.Fatal(err)
	}
}
