// Command apart is the adaptive-partitioning CLI: it loads or generates a
// graph, computes an initial partitioning with any of the paper's four
// strategies (or the centralised multilevel baseline), optionally runs the
// iterative adaptive heuristic to convergence, and reports cut ratio,
// balance, convergence time and migration counts.
//
// Examples:
//
//	apart -dataset 64kcube -k 9 -initial HSH
//	apart -dataset epinion -k 9 -initial RND -s 0.3
//	apart -input graph.edges -k 16 -initial DGR -iterative=false
//	apart -dataset plc10000 -k 9 -metis
package main

import (
	"flag"
	"fmt"
	"os"

	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/metis"
	"xdgp/internal/partition"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apart:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apart", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "", "named dataset from Table 1 (see -list)")
		input     = fs.String("input", "", "graph file to load instead of a dataset")
		format    = fs.String("format", "edges", "input format: edges (SNAP edge list) or metis (.graph)")
		directed  = fs.Bool("directed", false, "treat -input as a directed graph (edges format only)")
		list      = fs.Bool("list", false, "list available datasets and exit")
		k         = fs.Int("k", 9, "number of partitions")
		initial   = fs.String("initial", "HSH", "initial strategy: HSH, RND, DGR or MNN")
		iterative = fs.Bool("iterative", true, "run the adaptive iterative heuristic")
		useMetis  = fs.Bool("metis", false, "also run the centralised multilevel baseline")
		s         = fs.Float64("s", 0.5, "willingness to move (0,1]")
		capFactor = fs.Float64("capacity", 1.10, "capacity factor over balanced load")
		maxIter   = fs.Int("max-iterations", 5000, "iteration bound")
		seed      = fs.Int64("seed", 1, "random seed")
		parallel  = fs.Int("parallel", 0, "shards for the iterative sweep (0 = one per CPU, 1 = sequential)")
		increment = fs.Bool("incremental", false, "active-set scheduler: re-examine only vertices whose inputs changed (full sweep when off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range gen.Registry() {
			note := d.Scale
			if note == "" {
				note = "full scale"
			}
			fmt.Printf("%-14s %-6s |V|=%-10d |E|=%-10d %s\n", d.Name, d.Type, d.PaperV, d.PaperE, note)
		}
		return nil
	}

	g, err := loadGraph(*dataset, *input, *format, *directed, *seed)
	if err != nil {
		return err
	}
	work := g
	if g.Directed() {
		work = g.Undirected()
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg degree %.2f\n", work.NumVertices(), work.NumEdges(), work.AvgDegree())

	asn, err := partition.Initial(partition.Strategy(*initial), work, *k, *capFactor, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("initial %s: cut ratio %.4f, imbalance %.3f\n",
		*initial, partition.CutRatio(work, asn), partition.Imbalance(asn))

	if *iterative {
		cfg := core.DefaultConfig(*k, *seed)
		cfg.S = *s
		cfg.CapacityFactor = *capFactor
		cfg.MaxIterations = *maxIter
		cfg.RecordEvery = 0
		cfg.Parallelism = *parallel
		cfg.Incremental = *increment
		p, err := core.New(work, asn, cfg)
		if err != nil {
			return err
		}
		res := p.Run()
		mode := fmt.Sprintf("%d shards", p.Parallelism())
		if p.Parallelism() == 1 {
			mode = "sequential"
		}
		if *increment {
			mode += ", incremental"
		}
		fmt.Printf("iterative (%s): cut ratio %.4f, imbalance %.3f, converged at iteration %d (%d migrations)\n",
			mode, res.FinalCutRatio, partition.Imbalance(p.Assignment()), res.ConvergedAt, res.TotalMigrations)
		if !res.Converged {
			fmt.Println("warning: hit the iteration bound before convergence")
		}
	}

	if *useMetis {
		ma, err := metis.PartitionKWay(work, *k, metis.DefaultOptions(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("metis baseline: cut ratio %.4f, imbalance %.3f\n",
			partition.CutRatio(work, ma), partition.Imbalance(ma))
	}
	return nil
}

func loadGraph(dataset, input, format string, directed bool, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "" && input != "":
		return nil, fmt.Errorf("use either -dataset or -input, not both")
	case dataset != "":
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Build(seed), nil
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch format {
		case "edges":
			return graph.ReadEdgeList(f, directed)
		case "metis":
			return graph.ReadMetis(f)
		default:
			return nil, fmt.Errorf("unknown format %q (want edges or metis)", format)
		}
	default:
		return nil, fmt.Errorf("specify -dataset or -input (or -list)")
	}
}
