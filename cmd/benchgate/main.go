// Command benchgate compares two `go test -bench` outputs and fails when
// any benchmark matching a pattern slowed down beyond a threshold. CI runs
// it against the committed baseline (ci/bench-baseline.txt) to keep the
// migration-sweep hot path from regressing unnoticed; benchstat renders
// the human-readable report alongside.
//
//	benchgate -baseline ci/bench-baseline.txt -current new.txt \
//	          -threshold 1.15 -match 'StepPowerLaw|StepConvergedChurn'
//
// For every benchmark name present in both files, the minimum ns/op
// across repetitions is compared (the minimum is the least noisy estimate
// of the true cost — anything above it is scheduling jitter). Benchmarks
// matching -match that are present in the baseline but missing from the
// current run also fail the gate: a gated benchmark must not silently
// disappear. Regenerate the baseline with ci/bench.sh when the benchmark
// set or the reference hardware changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "", "baseline benchmark output file")
		current   = fs.String("current", "", "current benchmark output file")
		threshold = fs.Float64("threshold", 1.15, "maximum allowed current/baseline ns/op ratio")
		match     = fs.String("match", ".", "regexp selecting the gated benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	if *threshold <= 1 {
		return fmt.Errorf("threshold must be > 1, got %g", *threshold)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match: %w", err)
	}
	base, err := parseFile(*baseline)
	if err != nil {
		return err
	}
	cur, err := parseFile(*current)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("no benchmark results in %s", *baseline)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions, missing []string
	fmt.Fprintf(out, "%-60s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ratio")
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		b := min(base[name])
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			fmt.Fprintf(out, "%-60s %14.0f %14s %8s\n", name, b, "MISSING", "-")
			continue
		}
		cm := min(c)
		ratio := cm / b
		marker := ""
		if ratio > *threshold {
			regressions = append(regressions, name)
			marker = "  << REGRESSION"
		}
		fmt.Fprintf(out, "%-60s %14.0f %14.0f %7.2fx%s\n", name, b, cm, ratio, marker)
	}
	if len(missing) > 0 {
		return fmt.Errorf("%d gated benchmark(s) missing from current run: %s",
			len(missing), strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) slower than %.0f%% of baseline: %s",
			len(regressions), *threshold*100, strings.Join(regressions, ", "))
	}
	fmt.Fprintln(out, "benchgate: OK")
	return nil
}

// parseFile reads `go test -bench` output: every "BenchmarkName ... N ns/op"
// line contributes one ns/op sample under the name with the GOMAXPROCS
// suffix stripped, so repetitions (-count) accumulate per benchmark.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], ns)
		}
	}
	return out, sc.Err()
}

// parseLine extracts (name, ns/op) from one benchmark result line, if it
// is one.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix (Benchmark.../sub-4 -> Benchmark.../sub)
	// so baselines survive runner core-count changes.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || ns <= 0 {
				return "", 0, false
			}
			return name, ns, true
		}
	}
	return "", 0, false
}

func min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
