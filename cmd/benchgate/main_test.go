package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
BenchmarkStepPowerLaw/seq-4         	     100	   1000000 ns/op
BenchmarkStepPowerLaw/seq-4         	     100	   1050000 ns/op
BenchmarkStepPowerLaw/P=4-4         	     300	    400000 ns/op
BenchmarkOther-4                    	     500	     20000 ns/op	  12 extra/metric
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLine(t *testing.T) {
	name, ns, ok := parseLine("BenchmarkStepPowerLaw/seq-8 \t 100 \t 123456 ns/op \t 5 examined")
	if !ok || name != "BenchmarkStepPowerLaw/seq" || ns != 123456 {
		t.Fatalf("got %q %g %t", name, ns, ok)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Fatal("PASS line must not parse")
	}
	if _, _, ok := parseLine("goos: linux"); ok {
		t.Fatal("header line must not parse")
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	cur := strings.ReplaceAll(baseOut, "1000000", "1100000") // +10%
	b := writeTemp(t, "base.txt", baseOut)
	c := writeTemp(t, "cur.txt", cur)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-current", c, "-threshold", "1.15"}, &sb); err != nil {
		t.Fatalf("within-threshold run failed: %v\n%s", err, sb.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	cur := strings.ReplaceAll(baseOut, "400000", "600000") // +50% on P=4
	b := writeTemp(t, "base.txt", baseOut)
	c := writeTemp(t, "cur.txt", cur)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-current", c, "-threshold", "1.15"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "StepPowerLaw/P=4") {
		t.Fatalf("expected P=4 regression failure, got %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report missing marker:\n%s", sb.String())
	}
}

func TestGateIgnoresUnmatchedBenchmarks(t *testing.T) {
	cur := strings.ReplaceAll(baseOut, "20000 ns/op", "90000 ns/op") // huge, but unmatched
	b := writeTemp(t, "base.txt", baseOut)
	c := writeTemp(t, "cur.txt", cur)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-current", c, "-match", "StepPowerLaw"}, &sb); err != nil {
		t.Fatalf("unmatched benchmark must not gate: %v", err)
	}
}

func TestGateFailsOnMissingGatedBenchmark(t *testing.T) {
	cur := strings.ReplaceAll(baseOut, "BenchmarkStepPowerLaw/P=4-4", "BenchmarkRenamed-4")
	b := writeTemp(t, "base.txt", baseOut)
	c := writeTemp(t, "cur.txt", cur)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-current", c, "-match", "StepPowerLaw"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("expected missing-benchmark failure, got %v", err)
	}
}

func TestUsesMinAcrossRepetitions(t *testing.T) {
	// Baseline min is 1000000; a current pair (1900000, 1010000) must
	// pass: the minimum discards the noisy sample.
	cur := "BenchmarkStepPowerLaw/seq-4 100 1900000 ns/op\nBenchmarkStepPowerLaw/seq-4 100 1010000 ns/op\n" +
		"BenchmarkStepPowerLaw/P=4-4 300 400000 ns/op\nBenchmarkOther-4 500 20000 ns/op\n"
	b := writeTemp(t, "base.txt", baseOut)
	c := writeTemp(t, "cur.txt", cur)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-current", c}, &sb); err != nil {
		t.Fatalf("min-of-reps run failed: %v\n%s", err, sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	b := writeTemp(t, "base.txt", baseOut)
	if err := run([]string{"-baseline", b}, &strings.Builder{}); err == nil {
		t.Fatal("missing -current must error")
	}
	if err := run([]string{"-baseline", b, "-current", b, "-threshold", "0.9"}, &strings.Builder{}); err == nil {
		t.Fatal("threshold <= 1 must error")
	}
	if err := run([]string{"-baseline", b, "-current", b, "-match", "("}, &strings.Builder{}); err == nil {
		t.Fatal("bad regexp must error")
	}
}
