// Command visualize reproduces the paper's Video 1: it runs the adaptive
// heuristic on a 3-d mesh from hash partitioning and emits one PPM frame
// of a 2-d slice every few iterations, so the partitions can be watched
// consolidating ("the initial hash partitioning across 9 partitions ... is
// improved by increasing the number of neighbours placed together").
//
// Example:
//
//	visualize -side 40 -k 9 -frames 30 -out /tmp/frames
//	# then e.g.: ffmpeg -i /tmp/frames/frame_%03d.ppm video.mp4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/partition"
	"xdgp/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "visualize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("visualize", flag.ContinueOnError)
	var (
		side   = fs.Int("side", 40, "mesh side length (side³ vertices)")
		k      = fs.Int("k", 9, "number of partitions")
		frames = fs.Int("frames", 30, "number of frames to emit")
		every  = fs.Int("every", 2, "iterations between frames")
		scale  = fs.Int("scale", 8, "pixels per vertex")
		outDir = fs.String("out", "frames", "output directory for PPM frames")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	g := gen.Cube3D(*side)
	p, err := core.New(g, partition.Hash(g, *k), core.DefaultConfig(*k, *seed))
	if err != nil {
		return err
	}
	z := *side / 2
	for f := 0; f < *frames; f++ {
		path := filepath.Join(*outDir, fmt.Sprintf("frame_%03d.ppm", f))
		if err := writeFrame(path, p.Assignment(), *side, z, *scale); err != nil {
			return err
		}
		fmt.Printf("frame %3d: iteration %4d, cut ratio %.3f, slice fragmentation %.3f\n",
			f, p.Iteration(), p.CutRatio(), viz.Fragmentation(p.Assignment(), *side, *side, z))
		for i := 0; i < *every && !p.Converged(); i++ {
			p.Step()
		}
	}
	fmt.Printf("wrote %d frames to %s\n", *frames, *outDir)
	return nil
}

func writeFrame(path string, a *partition.Assignment, side, z, scale int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return viz.SlicePPM(f, a, side, side, z, scale)
}
