package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEmitsFrames(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-side", "8", "-k", "4", "-frames", "3", "-every", "1", "-scale", "1", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, "frame_00"+string(rune('0'+i))+".ppm")
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 || string(data[:2]) != "P6" {
			t.Fatalf("frame %d is not a PPM", i)
		}
	}
}

func TestRunBadOutDir(t *testing.T) {
	if err := run([]string{"-side", "4", "-frames", "1", "-out", "/dev/null/x"}); err == nil {
		t.Fatal("expected error for unwritable output dir")
	}
}
