// Command doccheck is the documentation gate for exported API surface:
// it parses the given package directories and fails when any exported
// identifier — function, method on an exported type, type, constant or
// variable — lacks a doc comment. CI runs it over the daemon-facing
// packages (internal/server, internal/replica, internal/partition,
// internal/snapshot) so the godoc contract (every exported symbol
// states its concurrency / zero-copy expectations) cannot rot silently.
//
//	doccheck ./internal/server ./internal/replica ./internal/partition ./internal/snapshot
//
// A grouped declaration (`const ( ... )`, `var ( ... )`) counts as
// documented when either the group or the individual spec carries the
// comment — matching idiomatic grouped-constant style. Test files are
// skipped. It is deliberately dependency-free (go/ast only) so the gate
// needs no tool installation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir...]")
		os.Exit(2)
	}
	missing, err := check(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers missing doc comments\n", len(missing))
		os.Exit(1)
	}
	fmt.Printf("doccheck OK: %d package(s) fully documented\n", len(os.Args[1:]))
}

// check scans every non-test .go file under each dir (non-recursive)
// and returns one "file:line: ..." finding per undocumented exported
// identifier, sorted for stable output.
func check(dirs []string) ([]string, error) {
	var missing []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			missing = append(missing, checkFile(fset, file)...)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkFile reports the undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s is missing a doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d.Recv) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && sp.Doc == nil && d.Doc == nil {
							kind := "variable"
							if d.Tok == token.CONST {
								kind = "constant"
							}
							report(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not API surface). Functions (nil
// receiver list) count as exported surface.
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unrecognised shape: err on the side of checking
		}
	}
}
