package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "bad.go", `package fixture

type Undocumented struct{}

func Exported() {}

func (Undocumented) Method() {}

const Answer = 42

var Global int

func unexported() {}

type hidden struct{}

func (hidden) Visible() {} // method on unexported type: not API surface
`)
	missing, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{
		"type Undocumented", "function Exported", "method Method",
		"constant Answer", "variable Global",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	if len(missing) != 5 {
		t.Fatalf("got %d findings, want 5:\n%s", len(missing), joined)
	}
	for _, dontWant := range []string{"unexported", "hidden", "Visible"} {
		if strings.Contains(joined, dontWant) {
			t.Errorf("false positive on %q:\n%s", dontWant, joined)
		}
	}
}

func TestCheckAcceptsDocumentedAndGroupDocs(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "good.go", `package fixture

// Documented is documented.
type Documented struct{}

// Exported does things.
func Exported() {}

// Method is documented.
func (Documented) Method() {}

// Limits for the frobnicator.
const (
	MaxFrob = 10
	MinFrob = 1
)
`)
	// Test files are out of scope even when undocumented.
	writeFixture(t, dir, "skip_test.go", `package fixture

func HelperWithoutDoc() {}
`)
	missing, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("false positives:\n%s", strings.Join(missing, "\n"))
	}
}

func TestCheckErrorsOnMissingDir(t *testing.T) {
	if _, err := check([]string{filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("missing directory did not error")
	}
}
