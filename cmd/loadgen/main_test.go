package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/replica"
	"xdgp/internal/server"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "carrier-pigeon"},
		{"-mode", "binary"}, // missing -binary-target
		{"-batch", "0"},
		{"-conns", "0"},
		{"extra-arg"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
	o, err := parseFlags([]string{"-mode", "binary", "-binary-target", "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	if o.mode != "binary" || o.batch != 1024 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestParseFlagsReadOnlyValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-read-only"},                     // no read load at all
		{"-read-only", "-read-qps", "100"}, // missing -read-max-id
		{"-read-only", "-read-qps", "100", "-read-max-id", "9", "-duration", "0s"}, // no run length
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
	o, err := parseFlags([]string{"-read-only", "-read-qps", "100", "-read-max-id", "500"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.readOnly || o.readMaxID != 500 || o.duration != 10*time.Second {
		t.Fatalf("parsed %+v", o)
	}
}

func TestDispatchParsesEdgeList(t *testing.T) {
	in := strings.NewReader("# comment\n0 1\n1 2\n\n7\n2 0\n")
	opts := &options{batch: 2, conns: 1}
	var cnt counters
	cnt.maxVertex.Store(-1)
	batches := make(chan graph.Batch, 8)
	if err := dispatch(in, opts, batches, &cnt); err != nil {
		t.Fatal(err)
	}
	close(batches)
	var all graph.Batch
	for b := range batches {
		if len(b) > opts.batch {
			t.Fatalf("batch of %d exceeds -batch %d", len(b), opts.batch)
		}
		all = append(all, b...)
	}
	want := graph.Batch{
		{Kind: graph.MutAddEdge, U: 0, V: 1},
		{Kind: graph.MutAddEdge, U: 1, V: 2},
		{Kind: graph.MutAddVertex, U: 7},
		{Kind: graph.MutAddEdge, U: 2, V: 0},
	}
	if len(all) != len(want) {
		t.Fatalf("got %d mutations, want %d", len(all), len(want))
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("mutation %d = %+v, want %+v", i, all[i], want[i])
		}
	}
	if got := cnt.offered.Load(); got != 4 {
		t.Fatalf("offered %d, want 4", got)
	}
	if got := cnt.maxVertex.Load(); got != 7 {
		t.Fatalf("maxVertex %d, want 7", got)
	}
}

func TestDispatchRejectsBadIDs(t *testing.T) {
	for _, input := range []string{"-1 2\n", "0 999999999999\n", "zebra 1\n"} {
		opts := &options{batch: 10, conns: 1}
		var cnt counters
		batches := make(chan graph.Batch, 8)
		if err := dispatch(strings.NewReader(input), opts, batches, &cnt); err == nil {
			t.Errorf("dispatch accepted %q", input)
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v", got)
	}
	// 99 fast reads and 1 slow one: p50 ≈ 1ms, p99 ≥ 80ms.
	for i := 0; i < 99; i++ {
		h.record(time.Millisecond)
	}
	h.record(100 * time.Millisecond)
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 < 0.5 || p50 > 2 {
		t.Fatalf("p50 = %vms, want ≈1ms", p50)
	}
	if p99 < 80 || p99 > 200 {
		t.Fatalf("p99 = %vms, want ≈100ms", p99)
	}
	if p99 <= p50 {
		t.Fatalf("p99 %v ≤ p50 %v", p99, p50)
	}
}

// liveServer starts a ticking in-process daemon with both planes for
// end-to-end loadgen runs.
func liveServer(t *testing.T) (httpURL, binAddr string) {
	t.Helper()
	cfg := server.DefaultConfig(4, 7)
	cfg.TickEvery = 5 * time.Millisecond
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(ln) //nolint:errcheck // exits on close
	t.Cleanup(func() { ln.Close() })
	return ts.URL, ln.Addr().String()
}

func TestEndToEndBothPlanes(t *testing.T) {
	httpURL, binAddr := liveServer(t)
	edges := writeRingEdges(t, 500)

	for _, mode := range []string{"json", "binary"} {
		args := []string{
			"-mode", mode,
			"-target", httpURL,
			"-in", edges,
			"-batch", "64",
			"-conns", "2",
			"-qps", "2000", // stretch the run so the read mix gets ticks
			"-read-qps", "500",
			"-watch", "1",
			"-drain-wait", "30s",
			"-quiet",
		}
		if mode == "binary" {
			args = append(args, "-binary-target", binAddr)
		}
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%s run: %v\n%s", mode, err, out.String())
		}
		var rep Report
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("%s report: %v\n%s", mode, err, out.String())
		}
		if rep.Mode != mode || rep.Offered != 500 || rep.Accepted != 500 {
			t.Fatalf("%s report %+v, want 500/500", mode, rep)
		}
		if rep.Errors != 0 || rep.ReadErrors != 0 {
			t.Fatalf("%s report has errors: %+v", mode, rep)
		}
		if !rep.Drained {
			t.Fatalf("%s run did not drain", mode)
		}
		if rep.Reads == 0 {
			t.Fatalf("%s run recorded no reads", mode)
		}
	}
}

// TestReadOnlyAgainstReplica points the -read-only mode at an apartr
// replica: the read mix must be served entirely by the replica's copy.
func TestReadOnlyAgainstReplica(t *testing.T) {
	cfg := server.DefaultConfig(4, 7)
	cfg.TickEvery = time.Hour
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open
	b := make(graph.Batch, 0, 100)
	for i := 0; i < 100; i++ {
		b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
			U: graph.VertexID(i), V: graph.VertexID((i + 1) % 100)})
	}
	s.Enqueue(b)
	s.TickNow()

	rcfg := replica.DefaultConfig(ts.URL)
	rcfg.LagPollEvery = 10 * time.Millisecond
	r, err := replica.New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	r.Start()
	rts := httptest.NewServer(r)
	defer rts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ok, _ := r.Healthy(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never became healthy")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var out bytes.Buffer
	args := []string{
		"-read-only", "-target", rts.URL,
		"-read-qps", "2000", "-read-batch", "4", "-read-max-id", "99",
		"-duration", "300ms", "-quiet",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("read-only run: %v\n%s", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, out.String())
	}
	if rep.Mode != "read-only" || rep.Reads == 0 || rep.ReadErrors != 0 {
		t.Fatalf("report %+v: want read-only mode, reads > 0, no errors", rep)
	}
	if !rep.Drained || rep.Offered != 0 {
		t.Fatalf("report %+v: read-only runs ingest nothing and always drain", rep)
	}
}

// writeRingEdges writes an n-vertex ring edge list to a temp file, in
// the commented SNAP-ish form gengraph emits.
func writeRingEdges(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# vertices %d edges %d directed false\n", n, n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "%d %d\n", i, (i+1)%n)
	}
	path := filepath.Join(t.TempDir(), "ring.edges")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// BenchmarkDispatch measures the replayer's parse-and-batch rate with
// producers that discard instantly — the ceiling loadgen can offer a
// daemon.
func BenchmarkDispatch(b *testing.B) {
	var buf bytes.Buffer
	const lines = 200_000
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&buf, "%d %d\n", i, i+1)
	}
	input := buf.Bytes()
	opts := &options{batch: 8192, conns: 1}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt counters
		batches := make(chan graph.Batch, 4)
		done := make(chan struct{})
		go func() {
			for range batches {
			}
			close(done)
		}()
		if err := dispatch(bytes.NewReader(input), opts, batches, &cnt); err != nil {
			b.Fatal(err)
		}
		close(batches)
		<-done
		if cnt.offered.Load() != lines {
			b.Fatalf("offered %d", cnt.offered.Load())
		}
	}
}

func TestRetryAfterBackoff(t *testing.T) {
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"integer seconds", "2", 2 * time.Second},
		{"fractional seconds", "0.25", 250 * time.Millisecond},
		{"zero floors", "0", retryBackoffFloor},
		{"sub-floor fraction floors", "0.001", retryBackoffFloor},
		{"absent falls back", "", 100 * time.Millisecond},
		{"garbage falls back", "soon", 100 * time.Millisecond},
		{"negative falls back", "-3", 100 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.header != "" {
				resp.Header.Set("Retry-After", tc.header)
			}
			if got := retryAfter(resp); got != tc.want {
				t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

func TestFloorBackoffBinaryHint(t *testing.T) {
	// The binary plane's NAK hint is a u32 millisecond count; a 0 hint
	// (legal on sub-millisecond ticks) must not produce a zero sleep.
	cases := []struct {
		millis uint32
		want   time.Duration
	}{
		{0, retryBackoffFloor},
		{1, retryBackoffFloor},
		{250, 250 * time.Millisecond},
	}
	for _, tc := range cases {
		got := floorBackoff(time.Duration(tc.millis) * time.Millisecond)
		if got != tc.want {
			t.Errorf("floorBackoff(%dms) = %v, want %v", tc.millis, got, tc.want)
		}
	}
}
