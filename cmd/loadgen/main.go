// Command loadgen replays an edge-list stream (the output of
// gengraph -stream, or any SNAP-style "u v" file) against a live apartd
// as a mutation load, over either ingest plane:
//
//   - -mode json posts batches to POST /v1/mutations;
//   - -mode binary speaks the length-prefixed frame protocol on the
//     daemon's -binary-addr listener (docs/API.md, "Binary ingest
//     plane").
//
// Producers honour backpressure — HTTP 429 Retry-After and binary
// backpressure NAKs both pause the offered load instead of counting as
// errors — so a run against an overloaded daemon measures the sustained
// admitted rate, not a pile of failures. Alongside the mutation stream
// it can drive a read mix at a fixed rate (single lookups, batch
// lookups, watch streams) and reports read latency quantiles under
// churn. The run ends when the stream is exhausted (or -limit is hit),
// waits for the daemon's ingest queue to drain, and emits a
// machine-readable JSON report:
//
//	gengraph -ba 1000000:3 -stream -seed 7 -out ba1m.edges
//	apartd -addr :8080 -binary-addr :8081 &
//	loadgen -target http://127.0.0.1:8080 -mode binary -binary-target 127.0.0.1:8081 \
//	        -in ba1m.edges -conns 4 -batch 4096 -read-qps 2000 -watch 2
//
// With -read-only the mutation stream is skipped entirely and loadgen
// becomes a pure read driver for -duration: point -target at an apartr
// replica (or a primary) and measure the read path alone, using
// [0, -read-max-id] as the lookup key space. Replicas serve no watch
// feed, so combine -watch with a replica target only if you want the
// errors.
//
//	apartr -addr :8082 -upstream http://127.0.0.1:8080 &
//	loadgen -target http://127.0.0.1:8082 -read-only -read-max-id 100000 \
//	        -read-qps 5000 -duration 30s
//
// A non-zero exit means hard errors (protocol failures, 5xx, transport
// errors) occurred; backpressure retries never fail a run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xdgp/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	target       string        // apartd HTTP base URL
	binaryTarget string        // binary plane host:port (mode binary)
	mode         string        // "json" or "binary"
	in           string        // edge-list path, "-" = stdin
	batch        int           // mutations per request/frame
	conns        int           // concurrent producer connections
	qps          float64       // target offered mutations/sec (0 = unthrottled)
	limit        uint64        // stop after this many mutations (0 = whole stream)
	readQPS      float64       // placement reads/sec (0 = no reads)
	readBatch    int           // vertices per read; ≤1 = single lookups
	watch        int           // concurrent watch streams
	drainWait    time.Duration // how long to wait for the ingest queue to drain
	quiet        bool          // suppress the human summary on stderr
	readOnly     bool          // no mutation stream: drive reads for -duration
	duration     time.Duration // read-only run length
	readMaxID    int64         // read-only lookup key space is [0, readMaxID]
	readZipf     float64       // Zipf exponent for read skew (0 = uniform)
	hotsetShift  time.Duration // rotate the Zipf hotset every period (0 = static)
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.target, "target", "http://127.0.0.1:8080", "apartd base URL (stats, reads, JSON ingest)")
	fs.StringVar(&o.binaryTarget, "binary-target", "", "binary ingest plane address host:port (required with -mode binary)")
	fs.StringVar(&o.mode, "mode", "json", "mutation plane: json or binary")
	fs.StringVar(&o.in, "in", "-", "edge-list input file (- = stdin); gengraph -stream output works directly")
	fs.IntVar(&o.batch, "batch", 1024, "mutations per request/frame")
	fs.IntVar(&o.conns, "conns", 4, "concurrent producer connections")
	fs.Float64Var(&o.qps, "qps", 0, "target offered mutations/sec across all producers (0 = unthrottled)")
	fs.Uint64Var(&o.limit, "limit", 0, "stop after this many mutations (0 = the whole stream)")
	fs.Float64Var(&o.readQPS, "read-qps", 0, "placement reads/sec during the run (0 = none)")
	fs.IntVar(&o.readBatch, "read-batch", 1, "vertices per read: 1 = GET /v1/placement/{v}, >1 = POST /v1/placements batches")
	fs.IntVar(&o.watch, "watch", 0, "concurrent GET /v1/watch streams to hold open during the run")
	fs.DurationVar(&o.drainWait, "drain-wait", time.Minute, "how long to wait for mutations_pending to reach zero after the stream ends")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the human-readable summary on stderr")
	fs.BoolVar(&o.readOnly, "read-only", false, "skip the mutation stream and drive reads for -duration; works against apartr replicas")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "read-only run length")
	fs.Int64Var(&o.readMaxID, "read-max-id", -1, "read-only lookup key space upper bound (required with -read-only)")
	fs.Float64Var(&o.readZipf, "read-zipf", 0, "skew reads by a Zipf law with this exponent (> 1; 0 = uniform) — pairs with apartd -workload-weight")
	fs.DurationVar(&o.hotsetShift, "hotset-shift-every", 0, "rotate the Zipf hotset to a new region of the ID space every period — a repeating flash crowd (0 = static hotset)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.readOnly {
		if o.readQPS <= 0 && o.watch == 0 {
			return nil, fmt.Errorf("-read-only needs -read-qps > 0 (or -watch) — there is no mutation load to measure")
		}
		if o.readQPS > 0 && o.readMaxID < 0 {
			return nil, fmt.Errorf("-read-only needs -read-max-id ≥ 0 (the lookup key space; the target's /v1/stats vertices is a good value)")
		}
		if o.duration <= 0 {
			return nil, fmt.Errorf("-duration must be positive with -read-only")
		}
	}
	if o.mode != "json" && o.mode != "binary" {
		return nil, fmt.Errorf("-mode %q: want json or binary", o.mode)
	}
	if o.mode == "binary" && o.binaryTarget == "" {
		return nil, fmt.Errorf("-mode binary requires -binary-target")
	}
	if o.batch < 1 || o.conns < 1 {
		return nil, fmt.Errorf("-batch and -conns must be ≥ 1")
	}
	if o.readBatch < 1 {
		o.readBatch = 1
	}
	if o.readZipf != 0 && o.readZipf <= 1 {
		return nil, fmt.Errorf("-read-zipf %g: the Zipf exponent must be > 1 (or 0 for uniform reads)", o.readZipf)
	}
	if o.hotsetShift > 0 && o.readZipf == 0 {
		return nil, fmt.Errorf("-hotset-shift-every needs -read-zipf — a uniform read mix has no hotset to shift")
	}
	return &o, nil
}

// Report is the machine-readable run summary printed to stdout.
type Report struct {
	Mode              string  `json:"mode"`
	Offered           uint64  `json:"mutations_offered"`
	Accepted          uint64  `json:"mutations_accepted"`
	BackpressureWaits uint64  `json:"backpressure_waits"`
	Errors            uint64  `json:"errors"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	MutationsPerSec   float64 `json:"mutations_per_sec"`
	Reads             uint64  `json:"reads"`
	ReadErrors        uint64  `json:"read_errors"`
	ReadP50Millis     float64 `json:"read_p50_ms"`
	ReadP99Millis     float64 `json:"read_p99_ms"`
	ReadZipf          float64 `json:"read_zipf"`
	HotsetShifts      uint64  `json:"hotset_shifts"`
	WatchStreams      int     `json:"watch_streams"`
	WatchEvents       uint64  `json:"watch_events"`
	DrainSeconds      float64 `json:"drain_seconds"`
	Drained           bool    `json:"drained"`
}

// counters is the shared scoreboard all workers write into.
type counters struct {
	offered      atomic.Uint64
	accepted     atomic.Uint64
	backpressure atomic.Uint64
	errors       atomic.Uint64
	reads        atomic.Uint64
	readErrors   atomic.Uint64
	hotShifts    atomic.Uint64
	watchEvents  atomic.Uint64
	maxVertex    atomic.Int64 // highest vertex ID offered so far; read targets
	lat          latencyHist
	errOnce      sync.Once
	firstErr     atomic.Value // string: first hard error, for the exit message
}

func (c *counters) hardError(err error) {
	c.errors.Add(1)
	c.errOnce.Do(func() { c.firstErr.Store(err.Error()) })
}

func run(args []string, stdout io.Writer) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if opts.in != "-" {
		f, err := os.Open(opts.in)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.conns + opts.watch + 4,
		MaxIdleConnsPerHost: opts.conns + opts.watch + 4,
	}}
	var cnt counters
	if opts.readOnly {
		return runReadOnly(opts, httpc, &cnt, stdout)
	}

	// Readers and watchers run for the duration of the producer phase.
	ctx, stopReads := context.WithCancel(context.Background())
	var readWG sync.WaitGroup
	if opts.readQPS > 0 {
		readWG.Add(1)
		go func() { defer readWG.Done(); runReads(ctx, opts, httpc, &cnt) }()
	}
	for i := 0; i < opts.watch; i++ {
		readWG.Add(1)
		go func() { defer readWG.Done(); runWatch(ctx, opts, httpc, &cnt) }()
	}

	// Producer phase: parse → pace → fan out over connections.
	batches := make(chan graph.Batch, opts.conns*2)
	var prodWG sync.WaitGroup
	for i := 0; i < opts.conns; i++ {
		prodWG.Add(1)
		go func() {
			defer prodWG.Done()
			var err error
			if opts.mode == "binary" {
				err = binaryProducer(opts, batches, &cnt)
			} else {
				err = jsonProducer(opts, httpc, batches, &cnt)
			}
			if err != nil {
				cnt.hardError(err)
				// Drain our share so the dispatcher never blocks forever.
				for range batches {
				}
			}
		}()
	}

	start := time.Now()
	parseErr := dispatch(in, opts, batches, &cnt)
	close(batches)
	prodWG.Wait()
	elapsed := time.Since(start)
	stopReads()
	readWG.Wait()
	if parseErr != nil {
		return fmt.Errorf("reading %s: %w", opts.in, parseErr)
	}

	// Let the daemon absorb what it admitted before declaring a rate.
	drainStart := time.Now()
	drained := waitDrain(opts, httpc, &cnt)

	rep := Report{
		Mode:              opts.mode,
		Offered:           cnt.offered.Load(),
		Accepted:          cnt.accepted.Load(),
		BackpressureWaits: cnt.backpressure.Load(),
		Errors:            cnt.errors.Load(),
		ElapsedSeconds:    elapsed.Seconds(),
		MutationsPerSec:   float64(cnt.accepted.Load()) / elapsed.Seconds(),
		Reads:             cnt.reads.Load(),
		ReadErrors:        cnt.readErrors.Load(),
		ReadP50Millis:     cnt.lat.quantile(0.50),
		ReadP99Millis:     cnt.lat.quantile(0.99),
		ReadZipf:          opts.readZipf,
		HotsetShifts:      cnt.hotShifts.Load(),
		WatchStreams:      opts.watch,
		WatchEvents:       cnt.watchEvents.Load(),
		DrainSeconds:      time.Since(drainStart).Seconds(),
		Drained:           drained,
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !opts.quiet {
		fmt.Fprintf(os.Stderr,
			"loadgen: %s plane: %d/%d mutations accepted in %.2fs = %.0f mut/s (%d backpressure waits); %d reads p50=%.2fms p99=%.2fms; %d watch events; drained=%v\n",
			rep.Mode, rep.Accepted, rep.Offered, rep.ElapsedSeconds, rep.MutationsPerSec,
			rep.BackpressureWaits, rep.Reads, rep.ReadP50Millis, rep.ReadP99Millis,
			rep.WatchEvents, rep.Drained)
	}
	if rep.Errors > 0 || rep.ReadErrors > 0 {
		msg, _ := cnt.firstErr.Load().(string)
		return fmt.Errorf("%d mutation errors, %d read errors (first: %s)", rep.Errors, rep.ReadErrors, msg)
	}
	if !drained {
		return fmt.Errorf("ingest queue still not empty after %s", opts.drainWait)
	}
	return nil
}

// runReadOnly is the -read-only run: no producers, no drain — just the
// read mix against -target (a replica or a primary) for -duration, over
// the fixed key space [0, -read-max-id].
func runReadOnly(opts *options, httpc *http.Client, cnt *counters, stdout io.Writer) error {
	cnt.maxVertex.Store(opts.readMaxID)
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()
	var wg sync.WaitGroup
	if opts.readQPS > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); runReads(ctx, opts, httpc, cnt) }()
	}
	for i := 0; i < opts.watch; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); runWatch(ctx, opts, httpc, cnt) }()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Mode:           "read-only",
		ElapsedSeconds: elapsed.Seconds(),
		Reads:          cnt.reads.Load(),
		ReadErrors:     cnt.readErrors.Load(),
		ReadP50Millis:  cnt.lat.quantile(0.50),
		ReadP99Millis:  cnt.lat.quantile(0.99),
		ReadZipf:       opts.readZipf,
		HotsetShifts:   cnt.hotShifts.Load(),
		WatchStreams:   opts.watch,
		WatchEvents:    cnt.watchEvents.Load(),
		Drained:        true, // nothing was ingested, nothing to drain
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !opts.quiet {
		fmt.Fprintf(os.Stderr,
			"loadgen: read-only: %d reads in %.2fs = %.0f reads/s, p50=%.2fms p99=%.2fms (%d errors); %d watch events\n",
			rep.Reads, rep.ElapsedSeconds, float64(rep.Reads)/rep.ElapsedSeconds,
			rep.ReadP50Millis, rep.ReadP99Millis, rep.ReadErrors, rep.WatchEvents)
	}
	if rep.ReadErrors > 0 {
		msg, _ := cnt.firstErr.Load().(string)
		return fmt.Errorf("%d read errors (first: %s)", rep.ReadErrors, msg)
	}
	return nil
}

// dispatch parses the edge list into batches and feeds the producer
// channel at the -qps schedule. "u v" lines become add-edge mutations,
// single-field lines add-vertex (matching WriteEdgeList's round-trip
// form); '#' comments and blank lines are skipped.
func dispatch(in io.Reader, opts *options, batches chan<- graph.Batch, cnt *counters) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var (
		cur      graph.Batch
		sent     uint64
		start    = time.Now()
		perBatch time.Duration
		nextSend time.Time
	)
	if opts.qps > 0 {
		perBatch = time.Duration(float64(opts.batch) / opts.qps * float64(time.Second))
		nextSend = start
	}
	localMax := int64(-1) // pushed to the shared max once per batch, not per line
	flush := func() {
		if len(cur) == 0 {
			return
		}
		if opts.qps > 0 {
			if d := time.Until(nextSend); d > 0 {
				time.Sleep(d)
			}
			nextSend = nextSend.Add(perBatch)
		}
		for {
			old := cnt.maxVertex.Load()
			if localMax <= old || cnt.maxVertex.CompareAndSwap(old, localMax) {
				break
			}
		}
		cnt.offered.Add(uint64(len(cur)))
		batches <- cur
		cur = nil
	}
	for sc.Scan() {
		mu, skip, err := parseLine(sc.Bytes())
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		if int64(mu.U) > localMax {
			localMax = int64(mu.U)
		}
		if mu.Kind == graph.MutAddEdge && int64(mu.V) > localMax {
			localMax = int64(mu.V)
		}
		cur = append(cur, mu)
		sent++
		if len(cur) >= opts.batch {
			flush()
		}
		if opts.limit > 0 && sent >= opts.limit {
			break
		}
	}
	flush()
	return sc.Err()
}

// parseLine converts one edge-list line to a mutation without
// allocating: "u v" → add-edge, "u" → add-vertex, blank/comment → skip.
// At full binary-plane rates the replayer pushes millions of lines a
// second through here, so this hand parse (instead of Fields+ParseInt
// on a copied string) is what keeps loadgen from being the bottleneck
// it is supposed to find in the daemon.
func parseLine(line []byte) (mu graph.Mutation, skip bool, err error) {
	i, n := 0, len(line)
	for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	if i == n || line[i] == '#' {
		return mu, true, nil
	}
	u, i, err := parseID(line, i)
	if err != nil {
		return mu, false, err
	}
	for i < n && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	if i == n || line[i] == '\r' {
		return graph.Mutation{Kind: graph.MutAddVertex, U: u}, false, nil
	}
	v, i, err := parseID(line, i)
	if err != nil {
		return mu, false, err
	}
	for i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	if i != n {
		return mu, false, fmt.Errorf("trailing garbage on line %q", line)
	}
	return graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v}, false, nil
}

// parseID reads one decimal vertex ID at line[i:], enforcing the same
// bounds as the daemon's parsers.
func parseID(line []byte, i int) (graph.VertexID, int, error) {
	start := i
	var id int64
	for ; i < len(line) && line[i] >= '0' && line[i] <= '9'; i++ {
		id = id*10 + int64(line[i]-'0')
		if id > graph.MaxReadVertexID {
			return 0, i, fmt.Errorf("vertex id %s exceeds the supported maximum %d", line[start:], int64(graph.MaxReadVertexID))
		}
	}
	if i == start {
		return 0, i, fmt.Errorf("bad vertex id in line %q", line)
	}
	return graph.VertexID(id), i, nil
}

// jsonProducer posts batches to /v1/mutations, pausing on 429
// Retry-After instead of failing.
func jsonProducer(opts *options, httpc *http.Client, batches <-chan graph.Batch, cnt *counters) error {
	url := opts.target + "/v1/mutations"
	var body bytes.Buffer
	for b := range batches {
		body.Reset()
		body.WriteString(`{"mutations":[`)
		for i, mu := range b {
			if i > 0 {
				body.WriteByte(',')
			}
			fmt.Fprintf(&body, `{"op":%q,"u":%d,"v":%d}`, mu.Kind.String(), mu.U, mu.V)
		}
		body.WriteString(`]}`)
		payload := body.Bytes()
		for {
			resp, err := httpc.Post(url, "application/json", bytes.NewReader(payload))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				cnt.accepted.Add(uint64(len(b)))
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				cnt.backpressure.Add(1)
				time.Sleep(retryAfter(resp))
				continue
			}
			return fmt.Errorf("POST /v1/mutations: status %d", resp.StatusCode)
		}
	}
	return nil
}

// retryBackoffFloor is the minimum pause any backpressure retry honours.
// A zero or sub-millisecond hint (the daemon rounds Retry-After up, but
// other servers and the binary plane's millisecond field can legitimately
// say 0) must not turn the retry loop into a busy spin against a full
// queue.
const retryBackoffFloor = 10 * time.Millisecond

// retryAfter reads a 429's Retry-After header, with a sane fallback.
// Fractional seconds are honoured (RFC 9110 only allows integers, but
// proxies and test servers send fractions in practice) and every parsed
// value is floored at retryBackoffFloor so "Retry-After: 0" cannot
// spin-retry.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil && secs >= 0 {
		return floorBackoff(time.Duration(secs * float64(time.Second)))
	}
	return 100 * time.Millisecond
}

// floorBackoff clamps a backpressure pause to retryBackoffFloor.
func floorBackoff(d time.Duration) time.Duration {
	if d < retryBackoffFloor {
		return retryBackoffFloor
	}
	return d
}

// binaryProducer streams batch frames over one persistent connection,
// honouring backpressure NAKs. Up to pipelineWindow frames ride the
// connection unacknowledged — stop-and-wait would idle the link for a
// full round trip per frame. Replies come back in order, so the
// in-flight queue is FIFO; a backpressure NAK retransmits its frame
// after the hinted pause (it rejoins the back of the line).
const pipelineWindow = 4

func binaryProducer(opts *options, batches <-chan graph.Batch, cnt *counters) error {
	conn, err := net.Dial("tcp", opts.binaryTarget)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	br := bufio.NewReaderSize(conn, 4<<10)

	var inflight [][]byte // sent, not yet acknowledged; oldest first
	var send func(frame []byte) error
	reapOne := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		f, err := graph.ReadFrame(br)
		if err != nil {
			return fmt.Errorf("read reply: %w", err)
		}
		frame := inflight[0]
		inflight = inflight[1:]
		switch {
		case f.Type == graph.FrameAck:
			cnt.accepted.Add(uint64(f.Ack.Accepted))
			return nil
		case f.Type == graph.FrameNak && f.Nak.Code == graph.NakBackpressure:
			cnt.backpressure.Add(1)
			// The hint is a u32 millisecond count and 0 is legitimate on
			// sub-millisecond ticks; floor it so the retransmit loop never
			// busy-spins against a full queue.
			time.Sleep(floorBackoff(time.Duration(f.Nak.RetryAfterMillis) * time.Millisecond))
			return send(frame)
		case f.Type == graph.FrameNak && f.Nak.Code == graph.NakShutdown:
			return fmt.Errorf("server draining: batch refused during shutdown (resend it after the daemon restarts)")
		default:
			return fmt.Errorf("server rejected frame: %+v", f.Nak)
		}
	}
	send = func(frame []byte) error {
		for len(inflight) >= pipelineWindow {
			if err := reapOne(); err != nil {
				return err
			}
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		inflight = append(inflight, frame)
		return nil
	}
	for b := range batches {
		frame, err := graph.AppendBatchFrame(nil, b)
		if err != nil {
			return err
		}
		if err := send(frame); err != nil {
			return err
		}
	}
	for len(inflight) > 0 {
		if err := reapOne(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readPicker draws the vertex IDs the read mix looks up: uniform over
// [0, hi] by default, Zipf-skewed with -read-zipf. The Zipf hotset is
// anchored at ID 0 (rank 0 = hottest); -hotset-shift-every rotates that
// anchor to a new region of the ID space each period, modelling a flash
// crowd whose focus keeps moving. The generator is rebuilt whenever the
// observed key space grows (ingest keeps raising hi), which is cheap.
type readPicker struct {
	opts   *options
	cnt    *counters
	rng    *rand.Rand
	zipf   *rand.Zipf
	zipfHi int64 // key space the current generator was built for
	start  time.Time
	shifts uint64
}

func newReadPicker(opts *options, cnt *counters, rng *rand.Rand) *readPicker {
	return &readPicker{opts: opts, cnt: cnt, rng: rng, zipfHi: -1, start: time.Now()}
}

func (p *readPicker) pick(hi int64) int64 {
	if p.opts.readZipf == 0 {
		return p.rng.Int63n(hi + 1)
	}
	if hi != p.zipfHi {
		p.zipf = rand.NewZipf(p.rng, p.opts.readZipf, 1, uint64(hi))
		p.zipfHi = hi
	}
	v := int64(p.zipf.Uint64())
	if p.opts.hotsetShift > 0 {
		n := uint64(time.Since(p.start) / p.opts.hotsetShift)
		if n != p.shifts {
			p.shifts = n
			p.cnt.hotShifts.Store(n)
		}
		// Stride ≈ 2/5 of the key space: successive hotsets land far
		// apart and don't revisit a region for several shifts.
		stride := (hi+1)*2/5 + 1
		v = (v + int64(n)*stride) % (hi + 1)
	}
	return v
}

// runReads issues placement lookups at -read-qps until ctx is
// cancelled, recording latencies. Single mode hits
// GET /v1/placement/{v}; batch mode posts -read-batch random vertices
// to /v1/placements. 404 (vertex not yet admitted or already removed)
// is a valid answer, not an error.
func runReads(ctx context.Context, opts *options, httpc *http.Client, cnt *counters) {
	rng := rand.New(rand.NewSource(1))
	picker := newReadPicker(opts, cnt, rng)
	interval := time.Duration(float64(time.Second) / opts.readQPS * float64(max(1, opts.readBatch)))
	tick := time.NewTicker(maxDur(interval, 50*time.Microsecond))
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		hi := cnt.maxVertex.Load()
		if hi < 0 {
			continue // nothing offered yet
		}
		start := time.Now()
		var (
			resp *http.Response
			err  error
		)
		if opts.readBatch <= 1 {
			resp, err = httpc.Get(fmt.Sprintf("%s/v1/placement/%d", opts.target, picker.pick(hi)))
		} else {
			var body bytes.Buffer
			body.WriteString(`{"vertices":[`)
			for i := 0; i < opts.readBatch; i++ {
				if i > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, "%d", picker.pick(hi))
			}
			body.WriteString(`]}`)
			resp, err = httpc.Post(opts.target+"/v1/placements", "application/json", &body)
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			cnt.readErrors.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			cnt.readErrors.Add(1)
			continue
		}
		cnt.lat.record(time.Since(start))
		cnt.reads.Add(uint64(max(1, opts.readBatch)))
	}
}

// runWatch holds one watch stream open, counting NDJSON events, until
// ctx is cancelled.
func runWatch(ctx context.Context, opts *options, httpc *http.Client, cnt *counters) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.target+"/v1/watch", nil)
	if err != nil {
		cnt.readErrors.Add(1)
		return
	}
	resp, err := httpc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			cnt.readErrors.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cnt.readErrors.Add(1)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			cnt.watchEvents.Add(1)
		}
	}
	// A scan error after cancel is the expected teardown path.
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		cnt.readErrors.Add(1)
	}
}

// waitDrain polls /v1/stats until mutations_pending reaches zero.
func waitDrain(opts *options, httpc *http.Client, cnt *counters) bool {
	deadline := time.Now().Add(opts.drainWait)
	for {
		var st struct {
			Pending int `json:"mutations_pending"`
		}
		resp, err := httpc.Get(opts.target + "/v1/stats")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil && st.Pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// latencyHist is a fixed-size geometric histogram (4 buckets per
// octave, ~19% relative error) over microsecond latencies — enough
// resolution for a p99 without unbounded memory.
type latencyHist struct {
	mu     sync.Mutex
	counts [128]uint64
	total  uint64
}

// bucketOf maps a latency to its bucket: index = 4*floor(log2 µs) +
// top-two mantissa bits.
func bucketOf(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us < 1 {
		us = 1
	}
	exp := bits.Len64(us) - 1
	var frac uint64
	if exp >= 2 {
		frac = (us >> (exp - 2)) & 3
	}
	idx := exp*4 + int(frac)
	if idx >= len(latencyHist{}.counts) {
		idx = len(latencyHist{}.counts) - 1
	}
	return idx
}

// upperMillis returns a bucket's upper bound in milliseconds.
func upperMillis(idx int) float64 {
	exp, frac := idx/4, idx%4
	us := float64(uint64(1)<<exp) * (1 + float64(frac+1)/4)
	return us / 1000
}

func (h *latencyHist) record(d time.Duration) {
	i := bucketOf(d)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.mu.Unlock()
}

// quantile returns the q-quantile's bucket upper bound in ms (0 when
// nothing was recorded).
func (h *latencyHist) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	want := uint64(q * float64(h.total))
	if want >= h.total {
		want = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > want {
			return upperMillis(i)
		}
	}
	return upperMillis(len(h.counts) - 1)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
