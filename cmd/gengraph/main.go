// Command gengraph emits any Table 1 dataset — or a parametric mesh /
// power-law graph — as a plain edge list on stdout or to a file, so the
// graphs used in the paper's evaluation can be inspected or fed to other
// tools.
//
// Examples:
//
//	gengraph -dataset 64kcube > 64kcube.edges
//	gengraph -mesh 20x20x20 -out mesh.edges
//	gengraph -plc 10000:13 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "named dataset from Table 1")
		mesh    = fs.String("mesh", "", "generate an NXxNYxNZ mesh, e.g. 20x20x20")
		plc     = fs.String("plc", "", "generate a Holme–Kim graph as N:M, e.g. 10000:13")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := build(*dataset, *mesh, *plc, *seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	return nil
}

func build(dataset, mesh, plc string, seed int64) (*graph.Graph, error) {
	set := 0
	for _, s := range []string{dataset, mesh, plc} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("specify exactly one of -dataset, -mesh, -plc")
	}
	switch {
	case dataset != "":
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Build(seed), nil
	case mesh != "":
		dims := strings.Split(mesh, "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("-mesh wants NXxNYxNZ, got %q", mesh)
		}
		var n [3]int
		for i, d := range dims {
			v, err := strconv.Atoi(d)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("-mesh dimension %q invalid", d)
			}
			n[i] = v
		}
		return gen.Mesh3D(n[0], n[1], n[2]), nil
	default:
		parts := strings.Split(plc, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-plc wants N:M, got %q", plc)
		}
		n, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || n < 2 || m < 1 {
			return nil, fmt.Errorf("-plc arguments invalid: %q", plc)
		}
		return gen.HolmeKim(n, m, 0.1, seed), nil
	}
}
