// Command gengraph emits any Table 1 dataset — or a parametric mesh /
// power-law graph — as a plain edge list on stdout or to a file, so the
// graphs used in the paper's evaluation can be inspected or fed to other
// tools.
//
// With -stream the edges go straight to the output as they are generated,
// without materialising the graph: O(1) memory for meshes and O(edges)
// endpoint words (no adjacency) for -ba preferential attachment. That is
// how the 10M-vertex nightly scenario generates its input. -dataset and
// -plc need the full graph (triad formation reads the adjacency) and
// reject -stream.
//
// Examples:
//
//	gengraph -dataset 64kcube > 64kcube.edges
//	gengraph -mesh 20x20x20 -out mesh.edges
//	gengraph -plc 10000:13 -seed 7
//	gengraph -mesh 220x220x220 -stream -out mesh10m.edges
//	gengraph -ba 10000000:3 -stream -seed 7 -out ba10m.edges
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "named dataset from Table 1")
		mesh    = fs.String("mesh", "", "generate an NXxNYxNZ mesh, e.g. 20x20x20")
		plc     = fs.String("plc", "", "generate a Holme–Kim graph as N:M, e.g. 10000:13")
		ba      = fs.String("ba", "", "generate a Barabási–Albert graph as N:M, e.g. 1000000:3")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "output file (default stdout)")
		stream  = fs.Bool("stream", false, "stream edges to the output without materialising the graph (-mesh and -ba only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	set := 0
	for _, s := range []string{*dataset, *mesh, *plc, *ba} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("specify exactly one of -dataset, -mesh, -plc, -ba")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "gengraph: close:", cerr)
			}
		}()
		w = f
	}

	if *stream {
		return runStream(w, *mesh, *ba, *seed)
	}

	g, err := build(*dataset, *mesh, *plc, *ba, *seed)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	return nil
}

func runStream(w io.Writer, mesh, ba string, seed int64) error {
	switch {
	case mesh != "":
		nx, ny, nz, err := parseMesh(mesh)
		if err != nil {
			return err
		}
		return gen.StreamMesh3D(w, nx, ny, nz)
	case ba != "":
		n, m, err := parseNM("-ba", ba)
		if err != nil {
			return err
		}
		return gen.StreamBarabasiAlbert(w, n, m, seed)
	default:
		return fmt.Errorf("-stream requires -mesh or -ba (-dataset and -plc build adjacency the generator must read back)")
	}
}

func build(dataset, mesh, plc, ba string, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "":
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Build(seed), nil
	case mesh != "":
		nx, ny, nz, err := parseMesh(mesh)
		if err != nil {
			return nil, err
		}
		return gen.Mesh3D(nx, ny, nz), nil
	case ba != "":
		n, m, err := parseNM("-ba", ba)
		if err != nil {
			return nil, err
		}
		return gen.BarabasiAlbert(n, m, seed), nil
	default:
		n, m, err := parseNM("-plc", plc)
		if err != nil {
			return nil, err
		}
		return gen.HolmeKim(n, m, 0.1, seed), nil
	}
}

func parseMesh(mesh string) (nx, ny, nz int, err error) {
	dims := strings.Split(mesh, "x")
	if len(dims) != 3 {
		return 0, 0, 0, fmt.Errorf("-mesh wants NXxNYxNZ, got %q", mesh)
	}
	var n [3]int
	for i, d := range dims {
		v, err := strconv.Atoi(d)
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("-mesh dimension %q invalid", d)
		}
		n[i] = v
	}
	return n[0], n[1], n[2], nil
}

func parseNM(flagName, val string) (n, m int, err error) {
	parts := strings.Split(val, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%s wants N:M, got %q", flagName, val)
	}
	n, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n < 2 || m < 1 {
		return 0, 0, fmt.Errorf("%s arguments invalid: %q", flagName, val)
	}
	if flagName == "-ba" && n < m+1 {
		// The generators clamp n up to m+1 silently; the CLI should not
		// emit a different-sized graph than requested.
		return 0, 0, fmt.Errorf("-ba needs N ≥ M+1, got %q", val)
	}
	return n, m, nil
}
