package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

func TestBuildVariants(t *testing.T) {
	g, err := build("plc1000", "", "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("dataset build |V| = %d", g.NumVertices())
	}
	g, err = build("", "3x4x5", "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 60 {
		t.Fatalf("mesh build |V| = %d", g.NumVertices())
	}
	g, err = build("", "", "500:3", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("plc build |V| = %d", g.NumVertices())
	}
	g, err = build("", "", "", "400:2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 {
		t.Fatalf("ba build |V| = %d", g.NumVertices())
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ dataset, mesh, plc, ba string }{
		{"", "", "", ""},      // nothing specified: falls through to plc parsing
		{"nope", "", "", ""},  // unknown dataset
		{"", "3x4", "", ""},   // bad mesh dims
		{"", "axbxc", "", ""}, // non-numeric mesh
		{"", "", "500", ""},   // bad plc
		{"", "", "1:0", ""},   // bad plc m
		{"", "", "", "10"},    // bad ba
		{"", "", "", "10:0"},  // bad ba m
		{"", "", "", "2:5"},   // ba n < m+1 (generator would silently resize)
	}
	for _, c := range cases {
		if _, err := build(c.dataset, c.mesh, c.plc, c.ba, 1); err == nil {
			t.Errorf("build(%q,%q,%q,%q): expected error", c.dataset, c.mesh, c.plc, c.ba)
		}
	}
	// Mutually exclusive flags are rejected by run, not build.
	if err := run([]string{"-dataset", "plc1000", "-mesh", "1x1x1"}); err == nil {
		t.Error("two inputs: expected error")
	}
	if err := run([]string{}); err == nil {
		t.Error("no inputs: expected error")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.edges")
	if err := run([]string{"-mesh", "2x2x2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(string(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 || g.NumEdges() != 12 {
		t.Fatalf("emitted cube has |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

// TestStreamMeshMatchesMaterialized is the -stream smoke test: the
// streamed mesh must be byte-identical to the materialised path, so the
// O(1)-memory generator can substitute for the full one everywhere.
func TestStreamMeshMatchesMaterialized(t *testing.T) {
	var materialized bytes.Buffer
	if err := gen.Mesh3D(4, 3, 2).WriteEdgeList(&materialized); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "stream.edges")
	if err := run([]string{"-mesh", "4x3x2", "-stream", "-out", out}); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, materialized.Bytes()) {
		t.Fatalf("-stream mesh output differs from materialised output:\nstream:\n%s\nmaterialised:\n%s",
			streamed, materialized.Bytes())
	}
}

// TestStreamBAMatchesMaterialized checks that the streamed preferential
// attachment produces exactly the edge set of gen.BarabasiAlbert for the
// same seed, and that the output parses back into a sound graph.
func TestStreamBAMatchesMaterialized(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ba.edges")
	if err := run([]string{"-ba", "300:3", "-seed", "9", "-stream", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(string(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := gen.BarabasiAlbert(300, 3, 9)
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("streamed BA |V|=%d |E|=%d, materialised |V|=%d |E|=%d",
			g.NumVertices(), g.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	mismatch := 0
	want.ForEachEdge(func(u, v graph.VertexID) {
		if !g.HasEdge(u, v) {
			mismatch++
		}
	})
	if mismatch != 0 {
		t.Fatalf("%d edges of the materialised BA graph missing from the stream", mismatch)
	}
}

func TestStreamRejectsAdjacencyBoundModes(t *testing.T) {
	if err := run([]string{"-plc", "100:3", "-stream"}); err == nil {
		t.Error("-plc -stream: expected error")
	}
	if err := run([]string{"-dataset", "plc1000", "-stream"}); err == nil {
		t.Error("-dataset -stream: expected error")
	}
}
