package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xdgp/internal/graph"
)

func TestBuildVariants(t *testing.T) {
	g, err := build("plc1000", "", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("dataset build |V| = %d", g.NumVertices())
	}
	g, err = build("", "3x4x5", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 60 {
		t.Fatalf("mesh build |V| = %d", g.NumVertices())
	}
	g, err = build("", "", "500:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("plc build |V| = %d", g.NumVertices())
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ dataset, mesh, plc string }{
		{"", "", ""},       // nothing specified
		{"x", "1x1x1", ""}, // two specified
		{"nope", "", ""},   // unknown dataset
		{"", "3x4", ""},    // bad mesh dims
		{"", "axbxc", ""},  // non-numeric mesh
		{"", "", "500"},    // bad plc
		{"", "", "1:0"},    // bad plc m
	}
	for _, c := range cases {
		if _, err := build(c.dataset, c.mesh, c.plc, 1); err == nil {
			t.Errorf("build(%q,%q,%q): expected error", c.dataset, c.mesh, c.plc)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.edges")
	if err := run([]string{"-mesh", "2x2x2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(string(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 || g.NumEdges() != 12 {
		t.Fatalf("emitted cube has |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}
