package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/server"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", ":9999", "-k", "5", "-seed", "42", "-incremental=false",
		"-tick", "50ms", "-checkpoint", "/tmp/x.snap", "-checkpoint-every", "4",
		"-watch-ring", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9999" || opts.cfg.K != 5 || opts.cfg.Seed != 42 {
		t.Fatalf("parsed %+v", opts)
	}
	if opts.cfg.Incremental {
		t.Fatal("incremental should be off")
	}
	if opts.cfg.TickEvery != 50*time.Millisecond || opts.cfg.CheckpointEvery != 4 {
		t.Fatalf("parsed %+v", opts.cfg)
	}
	if opts.cfg.WatchRing != 64 {
		t.Fatalf("watch ring %d, want 64", opts.cfg.WatchRing)
	}
}

func TestParseFlagsRejectsJunk(t *testing.T) {
	if _, err := parseFlags([]string{"-k", "3", "stray-arg"}); err == nil {
		t.Fatal("accepted stray positional argument")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestBuildServerFresh(t *testing.T) {
	opts, err := parseFlags([]string{"-k", "3"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := buildServer(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Vertices != 0 || st.K != 3 {
		t.Fatalf("fresh daemon stats %+v", st)
	}
}

func TestBuildServerRestore(t *testing.T) {
	// Produce a snapshot via a live daemon, then rebuild from disk.
	path := filepath.Join(t.TempDir(), "state.snap")
	cfg := server.DefaultConfig(4, 9)
	cfg.TickEvery = time.Hour
	cfg.CheckpointPath = path
	src, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b graph.Batch
	for i := 0; i < 30; i++ {
		b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
			U: graph.VertexID(i), V: graph.VertexID((i + 1) % 30)})
	}
	src.Enqueue(b)
	src.TickNow()
	if _, err := src.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	// Restore overrides the command line's algorithm knobs with the
	// snapshot's (k=4, seed=9), keeping serving knobs from the flags.
	opts, err := parseFlags([]string{"-k", "99", "-seed", "1234", "-restore", path, "-tick", "1h"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := buildServer(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.K != 4 || st.Vertices != 30 {
		t.Fatalf("restored stats %+v, want k=4 vertices=30", st)
	}
	got := srv.Config()
	if got.Seed != 9 || got.K != 4 {
		t.Fatalf("restored config %+v, want snapshot's k=4 seed=9", got)
	}
	if got.TickEvery != time.Hour {
		t.Fatalf("serving knob lost: tick=%s", got.TickEvery)
	}
	// The restored daemon keeps serving placements for snapshot vertices.
	if _, ok := srv.Placement(0); !ok {
		t.Fatal("restored daemon lost placement of vertex 0")
	}
}

func TestBuildServerRestoreMissingFile(t *testing.T) {
	opts, err := parseFlags([]string{"-restore", filepath.Join(t.TempDir(), "nope.snap")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(opts, nil); err == nil {
		t.Fatal("restore of missing file succeeded")
	}
	// A corrupt snapshot must fail loudly too.
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("XDGPSNAPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts.restore = bad
	if _, err := buildServer(opts, nil); err == nil {
		t.Fatal("restore of corrupt file succeeded")
	}
}
