// Command apartd is the streaming partition daemon: the serving form of
// the paper's adaptive partitioner. It ingests graph mutations over
// HTTP/JSON, coalesces them into batches on a configurable tick, runs
// the incremental re-adaptation loop between ticks, and serves placement
// reads from immutable, epoch-numbered routing snapshots that never
// touch the adaptation lock — single lookups, batch lookups
// (POST /v1/placements, mutually consistent within one epoch), and a
// streaming change feed (GET /v1/watch, per-epoch diffs with a bounded
// retention ring sized by -watch-ring). Checkpoints capture the complete
// partitioner state — graph, assignment, scheduler frontier, RNG
// positions — so a restarted daemon resumes deterministically
// mid-stream.
//
// Start fresh, stream mutations, query placements:
//
//	apartd -addr :8080 -k 9 -seed 1 -checkpoint /var/lib/apartd/state.snap
//	curl -X POST localhost:8080/v1/mutations \
//	     -d '{"mutations":[{"op":"add-edge","u":0,"v":1}]}'
//	curl localhost:8080/v1/placement/0
//	curl -X POST localhost:8080/v1/placements -d '{"vertices":[0,1,2]}'
//	curl -N localhost:8080/v1/watch
//	curl localhost:8080/v1/stats
//
// Checkpoint and resume:
//
//	curl -X POST localhost:8080/v1/checkpoint
//	apartd -addr :8080 -restore /var/lib/apartd/state.snap
//
// Cluster mode runs N daemons as one logical partitioner: each shard
// listens for its peers on -cluster-addr, exchanges migration decisions
// in barrier rounds every tick, and computes byte-identical placements
// to a single process running -parallel N. Every shard ingests
// mutations and serves reads; all algorithm flags (and -shards) must
// agree across the cluster, which the RPC handshake enforces. A crashed
// shard rejoins by restoring its checkpoint and replaying the missed
// rounds from its peers' journals (docs/OPERATIONS.md, "Running a
// cluster"):
//
//	apartd -addr :8080 -cluster-addr :9300 \
//	    -peers 127.0.0.1:9300,127.0.0.1:9301,127.0.0.1:9302 \
//	    -shard-id 0 -shards 3
//
// On SIGTERM/SIGINT the daemon stops accepting requests, absorbs the
// pending mutation queue, writes a final checkpoint (when -checkpoint is
// set) and exits. docs/API.md is the complete endpoint reference;
// docs/ARCHITECTURE.md covers the ingest→coalesce→re-adapt→serve data
// flow and docs/OPERATIONS.md the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xdgp/internal/cluster"
	"xdgp/internal/server"
	"xdgp/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apartd:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	addr              string
	binaryAddr        string
	clusterAddr       string
	peers             []string
	restore           string
	drainTicks        int
	readHeaderTimeout time.Duration
	idleTimeout       time.Duration
	cfg               server.Config
}

// parseFlags builds the daemon configuration from the command line.
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("apartd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		binaryAddr  = fs.String("binary-addr", "", "binary ingest plane listen address (empty = disabled); see docs/API.md for the frame protocol")
		k           = fs.Int("k", 9, "number of partitions")
		seed        = fs.Int64("seed", 1, "random seed (with the stream, determines every placement)")
		s           = fs.Float64("s", 0.5, "willingness to move (0,1]")
		capFactor   = fs.Float64("capacity", 1.10, "capacity factor over balanced load")
		parallel    = fs.Int("parallel", 1, "shards for the re-adaptation sweep (0 = one per CPU, 1 = sequential)")
		incremental = fs.Bool("incremental", true, "active-set scheduler (recommended for streaming; full sweep when off)")
		tick        = fs.Duration("tick", 250*time.Millisecond, "mutation-coalescing tick period (0 = manual mode: POST /v1/tick drives every tick)")
		maxSteps    = fs.Int("max-steps", 40, "heuristic iteration budget per tick")
		window      = fs.Int("window", 30, "consecutive quiet iterations to declare convergence")
		watchRing   = fs.Int("watch-ring", 0, "epoch diffs retained for GET /v1/watch resume (0 = default 256); older consumers get a resync event")
		ckpt        = fs.String("checkpoint", "", "snapshot path for POST /v1/checkpoint, periodic and shutdown checkpoints")
		ckptEvery   = fs.Int("checkpoint-every", 0, "auto-checkpoint every n ticks (0 = off; requires -checkpoint)")
		restore     = fs.String("restore", "", "resume from this snapshot (algorithm parameters come from the snapshot)")
		drainTicks  = fs.Int("drain-ticks", 1000, "max ticks the shutdown drain runs to absorb the pending queue")
		maxPending  = fs.Int("max-pending", 0, "ingest queue cap in mutations; producers over it get HTTP 429 / binary NAK backpressure (0 = default 1048576, -1 = unbounded)")
		shards      = fs.Int("ingest-shards", 0, "independent ingest queues (0 = one per CPU, capped at 32)")
		readHdrTO   = fs.Duration("read-header-timeout", 10*time.Second, "HTTP request-header read timeout (slowloris guard)")
		idleTO      = fs.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle connection timeout")
		watchTO     = fs.Duration("watch-write-timeout", 0, "per-event write deadline on GET /v1/watch streams; stalled consumers past it are dropped (0 = default 30s, -1ns = none)")
		binIdleTO   = fs.Duration("binary-idle-timeout", 0, "disconnect a silent binary-plane connection after this long (0 = default 5m, -1ns = none)")
		workloadW   = fs.Float64("workload-weight", 0, "workload term strength: weight each neighbour's migration vote by its decayed read heat (0 = paper-exact topology-only objective)")
		heatHalf    = fs.Duration("heat-halflife", 0, "read-heat half-life, applied per tick (0 = default 30s)")
		heatSample  = fs.Int("heat-sample", 0, "sample one in this many reads per heat shard, rounded down to a power of two (0 = default 64)")
		heatRecord  = fs.Bool("heat-record", false, "sample read heat even with -workload-weight 0, for apartd_heat_* observability")
		clusterAddr = fs.String("cluster-addr", "", "cluster RPC listen address; turns on cluster mode (requires -peers, -shard-id, -shards; see docs/ARCHITECTURE.md)")
		peers       = fs.String("peers", "", "comma-separated cluster RPC addresses of ALL shards, indexed by shard id (entry -shard-id is this process)")
		shardID     = fs.Int("shard-id", 0, "this replica's shard index in [0, -shards)")
		shardN      = fs.Int("shards", 0, "fixed cluster size (≥ 2); every shard must agree on it, the seed, K and the heuristic knobs")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := server.DefaultConfig(*k, *seed)
	cfg.S = *s
	cfg.CapacityFactor = *capFactor
	cfg.Parallelism = *parallel
	cfg.Incremental = *incremental
	cfg.TickEvery = *tick
	cfg.MaxStepsPerTick = *maxSteps
	cfg.ConvergenceWindow = *window
	cfg.CheckpointPath = *ckpt
	cfg.CheckpointEvery = *ckptEvery
	cfg.WatchRing = *watchRing
	cfg.MaxPending = *maxPending
	cfg.IngestShards = *shards
	cfg.WatchWriteTimeout = *watchTO
	cfg.BinaryIdleTimeout = *binIdleTO
	cfg.WorkloadWeight = *workloadW
	cfg.HeatHalfLife = *heatHalf
	cfg.HeatSample = *heatSample
	cfg.HeatRecord = *heatRecord
	var peerList []string
	if *clusterAddr != "" {
		cfg.ClusterShard = *shardID
		cfg.ClusterShards = *shardN
		if *peers == "" {
			return nil, fmt.Errorf("-cluster-addr requires -peers")
		}
		peerList = strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		if len(peerList) != *shardN {
			return nil, fmt.Errorf("-peers lists %d addresses, -shards says %d", len(peerList), *shardN)
		}
	} else if *shardN != 0 || *shardID != 0 || *peers != "" {
		return nil, fmt.Errorf("-peers/-shard-id/-shards require -cluster-addr")
	}
	return &options{
		addr:              *addr,
		binaryAddr:        *binaryAddr,
		clusterAddr:       *clusterAddr,
		peers:             peerList,
		restore:           *restore,
		drainTicks:        *drainTicks,
		readHeaderTimeout: *readHdrTO,
		idleTimeout:       *idleTO,
		cfg:               cfg,
	}, nil
}

// buildServer constructs the daemon, fresh or from a snapshot. The
// cluster path pre-loads the snapshot (the mesh handshake needs its
// watermark before the server exists) and passes it in; otherwise it is
// loaded here.
func buildServer(opts *options, snap *snapshot.Snapshot) (*server.Server, error) {
	if snap == nil && opts.restore != "" {
		var err error
		if snap, err = snapshot.Load(opts.restore); err != nil {
			return nil, err
		}
	}
	if snap == nil {
		return server.New(opts.cfg)
	}
	srv, err := server.Restore(opts.cfg, snap)
	if err != nil {
		return nil, err
	}
	log.Printf("restored %s: %d vertices, %d edges, tick %d, k=%d seed=%d",
		opts.restore, snap.Graph.NumVertices(), snap.Graph.NumEdges(),
		snap.Meta.Ticks, snap.Params.K, snap.Params.Seed)
	return srv, nil
}

// clusterConfigHash fingerprints every parameter the deterministic
// replicated state machine depends on. Peers exchange it in the
// handshake and refuse to mesh on a mismatch — a shard with a different
// seed or step budget would silently diverge instead of failing fast.
func clusterConfigHash(cfg server.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "k=%d seed=%d s=%g cap=%g incremental=%v window=%d steps=%d shards=%d",
		cfg.K, cfg.Seed, cfg.S, cfg.CapacityFactor, cfg.Incremental,
		cfg.ConvergenceWindow, cfg.MaxStepsPerTick, cfg.ClusterShards)
	return h.Sum64()
}

// setupCluster listens on the cluster RPC address and meshes with the
// peers, returning the connected exchange. With a snapshot present the
// algorithm parameters it pins (and the replay watermark it carries)
// shape the handshake, matching what server.Restore will enforce.
func setupCluster(opts *options, snap *snapshot.Snapshot) (*cluster.TCP, error) {
	hashCfg := opts.cfg
	watermark := uint64(0)
	if snap != nil {
		if snap.Cluster == nil {
			return nil, fmt.Errorf("snapshot %s carries no cluster identity; cluster mode resumes only from cluster-mode checkpoints", opts.restore)
		}
		watermark = snap.Cluster.RoundsCompleted
		hashCfg.K = snap.Params.K
		hashCfg.Seed = snap.Params.Seed
		hashCfg.S = snap.Params.S
		hashCfg.CapacityFactor = snap.Params.CapacityFactor
		hashCfg.Incremental = snap.Params.Incremental
		hashCfg.ConvergenceWindow = snap.Params.ConvergenceWindow
	}
	ln, err := net.Listen("tcp", opts.clusterAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster listener: %w", err)
	}
	log.Printf("cluster shard %d/%d meshing on %s (peers %v, watermark %d)",
		opts.cfg.ClusterShard, opts.cfg.ClusterShards, ln.Addr(), opts.peers, watermark)
	ex, err := cluster.NewTCP(cluster.TCPConfig{
		Shard:      opts.cfg.ClusterShard,
		Shards:     opts.cfg.ClusterShards,
		Listener:   ln,
		Peers:      opts.peers,
		ConfigHash: clusterConfigHash(hashCfg),
		Watermark:  watermark,
		Logf:       log.Printf,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster mesh: %w", err)
	}
	return ex, nil
}

func run(args []string) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	var snap *snapshot.Snapshot
	if opts.clusterAddr != "" {
		if opts.restore != "" {
			if snap, err = snapshot.Load(opts.restore); err != nil {
				return err
			}
		}
		ex, err := setupCluster(opts, snap)
		if err != nil {
			return err
		}
		// The server never closes the exchange; this close runs after the
		// deferred srv.Stop, once the drain's final rounds are done.
		defer ex.Close() //nolint:errcheck // teardown
		opts.cfg.Exchange = ex
	}
	srv, err := buildServer(opts, snap)
	if err != nil {
		return err
	}
	cfg := srv.Config()
	srv.Start()
	defer srv.Stop()

	// WriteTimeout stays zero on purpose: GET /v1/watch responses are
	// unbounded streams, and each event write already runs under the
	// per-event deadline (-watch-write-timeout). The header and idle
	// timeouts close the slowloris and abandoned-keep-alive holes.
	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           srv,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	var binLn net.Listener
	if opts.binaryAddr != "" {
		var err error
		binLn, err = net.Listen("tcp", opts.binaryAddr)
		if err != nil {
			return fmt.Errorf("binary listener: %w", err)
		}
		go func() {
			if err := srv.ServeBinary(binLn); err != nil {
				errCh <- fmt.Errorf("binary plane: %w", err)
			}
		}()
		log.Printf("binary ingest plane listening on %s", binLn.Addr())
	}
	log.Printf("apartd listening on %s (k=%d seed=%d incremental=%v tick=%s checkpoint=%q)",
		opts.addr, cfg.K, cfg.Seed, cfg.Incremental, cfg.TickEvery, cfg.CheckpointPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case got := <-sig:
		log.Printf("received %s: draining", got)
		if binLn != nil {
			binLn.Close() //nolint:errcheck // stop new producers; live conns close in srv.Stop via Drain
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // in-flight requests get the grace window
		ticks, err := srv.Drain(opts.drainTicks)
		st := srv.Stats()
		log.Printf("drained in %d ticks: %d vertices, %d edges, converged=%v, %d checkpoints",
			ticks, st.Vertices, st.Edges, st.Converged, st.Checkpoints)
		if err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
