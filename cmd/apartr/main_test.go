package main

import (
	"testing"
	"time"

	"xdgp/internal/replica"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", ":9001", "-upstream", "http://10.0.0.5:8080",
		"-page", "500", "-max-lag-epochs", "16",
		"-lag-poll", "250ms", "-reconnect-min", "50ms", "-reconnect-max", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9001" || opts.cfg.Upstream != "http://10.0.0.5:8080" {
		t.Fatalf("parsed %+v", opts)
	}
	if opts.cfg.PageSize != 500 || opts.cfg.MaxLagEpochs != 16 {
		t.Fatalf("parsed %+v", opts.cfg)
	}
	if opts.cfg.LagPollEvery != 250*time.Millisecond ||
		opts.cfg.ReconnectMin != 50*time.Millisecond ||
		opts.cfg.ReconnectMax != 2*time.Second {
		t.Fatalf("parsed %+v", opts.cfg)
	}
	// The parsed config must be accepted by the replica constructor.
	if _, err := replica.New(opts.cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags([]string{"-upstream", "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.PageSize != replica.MaxPageSize ||
		opts.cfg.MaxLagEpochs != replica.DefaultMaxLagEpochs ||
		opts.cfg.LagPollEvery != replica.DefaultLagPoll {
		t.Fatalf("defaults not applied: %+v", opts.cfg)
	}
}

func TestParseFlagsRejectsJunk(t *testing.T) {
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("accepted a command line without -upstream")
	}
	if _, err := parseFlags([]string{"-upstream", "http://x", "stray"}); err == nil {
		t.Fatal("accepted stray positional argument")
	}
	if _, err := parseFlags([]string{"-upstream", "http://x", "-no-such-flag"}); err == nil {
		t.Fatal("accepted unknown flag")
	}
	// Flag parsing passes an oversized -page through; the constructor is
	// the validation authority and must reject it.
	opts, err := parseFlags([]string{"-upstream", "http://x", "-page", "200000"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.New(opts.cfg); err == nil {
		t.Fatal("oversized -page accepted by the constructor")
	}
}
