// Command apartr is the read-replica daemon: a process that copies a
// primary apartd's routing table over its public HTTP API and serves
// placement reads from the copy with the same lock-free snapshot path as
// the primary. Replicas are how reads survive a primary restart and how
// read throughput scales horizontally — each replica answers from local
// memory; only the replication stream touches the primary.
//
// It bootstraps by paging POST /v1/placements (cursor+limit form), tails
// GET /v1/watch for per-epoch diffs, and re-bootstraps automatically
// when the primary evicts its resume point from the diff ring, restarts
// (detected by the X-Apartd-Instance token, not by epoch numbers), or
// regresses epochs. docs/REPLICATION.md specifies the protocol and the
// consistency contract; docs/OPERATIONS.md has the runbook.
//
// Run against a primary and read through the replica:
//
//	apartr -addr :8081 -upstream http://127.0.0.1:8080
//	curl localhost:8081/v1/placement/0
//	curl -X POST localhost:8081/v1/placements -d '{"vertices":[0,1,2]}'
//	curl localhost:8081/v1/stats
//	curl localhost:8081/healthz
//
// /healthz goes 503 while bootstrapping and when the replica lags the
// primary by more than -max-lag-epochs; a primary that is merely
// unreachable does NOT fail health — serving last-known-good placements
// is the point of the replica tier. On SIGTERM/SIGINT the replica stops
// its replication loops, finishes in-flight reads and exits; it holds no
// durable state, so a restarted replica simply re-bootstraps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xdgp/internal/replica"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apartr:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	addr              string
	readHeaderTimeout time.Duration
	idleTimeout       time.Duration
	cfg               replica.Config
}

// parseFlags builds the replica configuration from the command line.
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("apartr", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8081", "listen address for the read API")
		upstream  = fs.String("upstream", "", "primary apartd base URL (required), e.g. http://127.0.0.1:8080")
		page      = fs.Int("page", replica.MaxPageSize, "bootstrap page size in vertex IDs (max 100000)")
		maxLag    = fs.Int("max-lag-epochs", replica.DefaultMaxLagEpochs, "epochs behind the primary before /healthz goes 503 (-1 = never)")
		lagPoll   = fs.Duration("lag-poll", replica.DefaultLagPoll, "how often to poll the primary's /v1/stats for its epoch")
		reconMin  = fs.Duration("reconnect-min", replica.DefaultReconnectMin, "floor of the jittered reconnect backoff")
		reconMax  = fs.Duration("reconnect-max", replica.DefaultReconnectMax, "ceiling of the jittered reconnect backoff")
		readHdrTO = fs.Duration("read-header-timeout", 10*time.Second, "HTTP request-header read timeout (slowloris guard)")
		idleTO    = fs.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle connection timeout")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *upstream == "" {
		return nil, fmt.Errorf("-upstream is required (the primary's base URL)")
	}
	cfg := replica.DefaultConfig(*upstream)
	cfg.PageSize = *page
	cfg.MaxLagEpochs = *maxLag
	cfg.LagPollEvery = *lagPoll
	cfg.ReconnectMin = *reconMin
	cfg.ReconnectMax = *reconMax
	return &options{
		addr:              *addr,
		readHeaderTimeout: *readHdrTO,
		idleTimeout:       *idleTO,
		cfg:               cfg,
	}, nil
}

func run(args []string) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	r, err := replica.New(opts.cfg)
	if err != nil {
		return err
	}
	r.Start()
	defer r.Stop()

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           r,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("apartr listening on %s (upstream=%s page=%d max-lag-epochs=%d)",
		opts.addr, opts.cfg.Upstream, opts.cfg.PageSize, opts.cfg.MaxLagEpochs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case got := <-sig:
		log.Printf("received %s: shutting down", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // in-flight reads get the grace window
		r.Stop()
		st := r.Stats()
		log.Printf("stopped at epoch %d (%s, %d resyncs, %d reads served)",
			st.Epoch, st.State, st.Resyncs, st.ReadsServed)
		return nil
	}
}
