// Package xdgp_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (each runs the
// corresponding experiment driver in miniature and reports its headline
// metrics), plus micro-benchmarks for the heuristic's hot paths.
//
// Regenerate the full-scale numbers with:
//
//	go run ./cmd/experiments -run all
//
// and the benchmark suite with:
//
//	go test -bench=. -benchmem
package xdgp_test

import (
	"fmt"
	"testing"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/core"
	"xdgp/internal/experiments"
	"xdgp/internal/gen"
	"xdgp/internal/metis"
	"xdgp/internal/partition"
)

// benchOpt is the bench-friendly configuration: miniature datasets, one
// repetition, deterministic seed.
func benchOpt() experiments.Options {
	return experiments.Options{Quick: true, Reps: 1, Seed: 1}
}

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset construction).
func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", "avgdeg.64kcube")
}

// BenchmarkFigure1WillingnessSweep regenerates Figure 1 (effect of s).
func BenchmarkFigure1WillingnessSweep(b *testing.B) {
	runExperiment(b, "fig1", "64kcube.cut.s=0.5", "64kcube.conv.s=0.5")
}

// BenchmarkFigure4InitialStrategies regenerates Figure 4 (initial
// partitioning sensitivity, vs the METIS line).
func BenchmarkFigure4InitialStrategies(b *testing.B) {
	runExperiment(b, "fig4", "64kcube.HSH.initial", "64kcube.HSH.iterative", "64kcube.metis")
}

// BenchmarkFigure5GraphTypes regenerates Figure 5 (dependence on graph type).
func BenchmarkFigure5GraphTypes(b *testing.B) {
	runExperiment(b, "fig5", "1e4.HSH", "plc1000.HSH")
}

// BenchmarkFigure6Scalability regenerates Figure 6 (cut ratio and
// convergence time vs size).
func BenchmarkFigure6Scalability(b *testing.B) {
	runExperiment(b, "fig6", "mesh.conv.n=1000", "mesh.conv.n=9900")
}

// BenchmarkFigure7Biomedical regenerates Figure 7 (cardiac FEM:
// re-arrangement and burst absorption).
func BenchmarkFigure7Biomedical(b *testing.B) {
	runExperiment(b, "fig7", "initial.cut", "phaseA.cut", "phaseA.steady.time")
}

// BenchmarkFigure8Twitter regenerates Figure 8 (tweet stream, adaptive vs
// static superstep time).
func BenchmarkFigure8Twitter(b *testing.B) {
	runExperiment(b, "fig8", "speedup")
}

// BenchmarkFigure9CDR regenerates Figure 9 (CDR stream, weekly cuts and
// time per iteration).
func BenchmarkFigure9CDR(b *testing.B) {
	runExperiment(b, "fig9", "week4.dynamic.cuts", "week4.static.cuts")
}

// ---- Micro-benchmarks: the heuristic's hot paths ----

// BenchmarkCoreIterationMesh measures one heuristic iteration on a mesh
// (the per-iteration cost that Section 2 argues must stay lightweight).
func BenchmarkCoreIterationMesh(b *testing.B) {
	g := gen.Cube3D(20) // 8 000 vertices
	cfg := core.DefaultConfig(9, 1)
	cfg.RecordEvery = 0
	cfg.Parallelism = 1 // the paper-exact sequential baseline
	p, err := core.New(g, partition.Hash(g, 9), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkCoreIterationPowerLaw measures one heuristic iteration on a
// power-law graph with hubs, comparing the sequential path against the
// sharded sweep at increasing shard counts (the speedup column of the
// parallelisation work; on a multicore machine P≥4 should run the
// iteration at least 2x faster than seq).
func BenchmarkCoreIterationPowerLaw(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"P=2", 2}, {"P=4", 4}, {"P=8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			g := gen.HolmeKim(8000, 7, 0.1, 1)
			cfg := core.DefaultConfig(9, 1)
			cfg.RecordEvery = 0
			cfg.Parallelism = bc.par
			p, err := core.New(g, partition.Hash(g, 9), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}

// BenchmarkCoreRunToConvergence measures a full adaptive run on a small
// mesh, the unit of the quality experiments.
func BenchmarkCoreRunToConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.Cube3D(10)
		cfg := core.DefaultConfig(9, 1)
		cfg.RecordEvery = 0
		p, err := core.New(g, partition.Hash(g, 9), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := p.Run()
		if i == b.N-1 {
			b.ReportMetric(res.FinalCutRatio, "cut")
			b.ReportMetric(float64(res.ConvergedAt), "conv")
		}
	}
}

// BenchmarkInitialStrategies measures each streaming initial partitioner.
func BenchmarkInitialStrategies(b *testing.B) {
	g := gen.HolmeKim(5000, 6, 0.1, 1)
	for _, strat := range partition.Strategies() {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Initial(strat, g, 9, 1.10, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetisKWay measures the centralised multilevel baseline.
func BenchmarkMetisKWay(b *testing.B) {
	g := gen.Cube3D(12)
	for i := 0; i < b.N; i++ {
		a, err := metis.PartitionKWay(g, 9, metis.DefaultOptions(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(partition.CutRatio(g, a), "cut")
		}
	}
}

// BenchmarkEngineSuperstepPageRank measures one BSP superstep of PageRank
// over 9 partitions at varying compute-worker counts (workers are
// decoupled from partitions; the simulated statistics are identical, only
// wall-clock changes).
func BenchmarkEngineSuperstepPageRank(b *testing.B) {
	for _, workers := range []int{1, 4, 9, 16} {
		b.Run(fmt.Sprintf("W=%d", workers), func(b *testing.B) {
			g := gen.Cube3D(16)
			e, err := bsp.NewEngine(g, partition.Hash(g, 9), apps.NewPageRank(g.NumVertices(), 1<<30), bsp.Config{Workers: workers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunSuperstep()
			}
		})
	}
}

// BenchmarkAdaptivePlan measures one background repartitioning pass over
// the whole vertex set.
func BenchmarkAdaptivePlan(b *testing.B) {
	g := gen.Cube3D(16)
	e, err := bsp.NewEngine(g, partition.Hash(g, 9), apps.NewPageRank(g.NumVertices(), 1<<30), bsp.Config{Workers: 9, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := adaptive.New(adaptive.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	e.SetRepartitioner(svc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunSuperstep()
	}
}

// BenchmarkGraphMutation measures the dynamic-graph mutation path
// (vertex/edge churn) that the streams exercise.
func BenchmarkGraphMutation(b *testing.B) {
	g := gen.Cube3D(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst := gen.ForestFireExpansion(g, 10, gen.DefaultForestFire(), int64(i))
		g.Apply(burst)
	}
}
