package xdgp_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// capacity quotas of Section 2.2 (vs unquota'd greedy migration), the
// willingness-to-move coin of Section 2.3, the capacity factor, and the
// two future-work extensions (edge balance, hot-spot awareness).

import (
	"testing"

	"xdgp/internal/adaptive"
	"xdgp/internal/bsp"
	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/metis"
	"xdgp/internal/partition"
)

// BenchmarkAblationQuotas compares the heuristic with quotas (the paper's
// design) against the unquota'd variant that suffers node densification.
func BenchmarkAblationQuotas(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"quotas-on", false}, {"quotas-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var imb, cut float64
			for i := 0; i < b.N; i++ {
				g := gen.HolmeKim(1500, 6, 0.1, 1)
				cfg := core.DefaultConfig(3, 1)
				cfg.DisableQuotas = mode.disable
				cfg.RecordEvery = 0
				cfg.MaxIterations = 300
				p, err := core.New(g, partition.Random(g, 3, 1), cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := p.Run()
				imb = partition.Imbalance(p.Assignment())
				cut = res.FinalCutRatio
			}
			b.ReportMetric(imb, "imbalance")
			b.ReportMetric(cut, "cut")
		})
	}
}

// BenchmarkAblationWillingness sweeps the s coin (the Figure 1 knob) on
// one graph, reporting convergence time and cut.
func BenchmarkAblationWillingness(b *testing.B) {
	for _, s := range []float64{0.1, 0.5, 1.0} {
		name := map[float64]string{0.1: "s=0.1", 0.5: "s=0.5", 1.0: "s=1.0"}[s]
		b.Run(name, func(b *testing.B) {
			var conv, cut float64
			for i := 0; i < b.N; i++ {
				g := gen.Cube3D(12)
				cfg := core.DefaultConfig(9, 1)
				cfg.S = s
				cfg.RecordEvery = 0
				p, err := core.New(g, partition.Hash(g, 9), cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := p.Run()
				conv = float64(res.ConvergedAt)
				cut = res.FinalCutRatio
			}
			b.ReportMetric(conv, "conv")
			b.ReportMetric(cut, "cut")
		})
	}
}

// BenchmarkAblationCapacityFactor sweeps the capacity headroom: tighter
// capacities slow adaptation (smaller quotas), looser ones trade balance.
func BenchmarkAblationCapacityFactor(b *testing.B) {
	for _, f := range []float64{1.01, 1.10, 1.40} {
		name := map[float64]string{1.01: "cap=1.01", 1.10: "cap=1.10", 1.40: "cap=1.40"}[f]
		b.Run(name, func(b *testing.B) {
			var conv, cut, imb float64
			for i := 0; i < b.N; i++ {
				g := gen.Cube3D(12)
				cfg := core.DefaultConfig(9, 1)
				cfg.CapacityFactor = f
				cfg.RecordEvery = 0
				p, err := core.New(g, partition.Random(g, 9, 1), cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := p.Run()
				conv = float64(res.ConvergedAt)
				cut = res.FinalCutRatio
				imb = partition.Imbalance(p.Assignment())
			}
			b.ReportMetric(conv, "conv")
			b.ReportMetric(cut, "cut")
			b.ReportMetric(imb, "imbalance")
		})
	}
}

// BenchmarkAblationEdgeBalance compares vertex-balanced (the paper's
// default) against the edge-balanced extension on a hub-heavy graph,
// reporting the edge imbalance each mode ends with.
func BenchmarkAblationEdgeBalance(b *testing.B) {
	for _, mode := range []struct {
		name  string
		edges bool
	}{{"vertex-balanced", false}, {"edge-balanced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var vImb, eImb, cut float64
			for i := 0; i < b.N; i++ {
				g := gen.HolmeKim(3000, 8, 0.1, 3)
				cfg := core.DefaultConfig(6, 3)
				cfg.BalanceEdges = mode.edges
				cfg.RecordEvery = 0
				p, err := core.New(g, partition.Random(g, 6, 3), cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := p.Run()
				vImb = partition.Imbalance(p.Assignment())
				eImb = core.EdgeImbalance(g, p.Assignment())
				cut = res.FinalCutRatio
			}
			b.ReportMetric(vImb, "vertex-imbalance")
			b.ReportMetric(eImb, "edge-imbalance")
			b.ReportMetric(cut, "cut")
		})
	}
}

// BenchmarkAblationRepartitionBaseline contrasts the paper's adaptive
// heuristic with the "re-partition from scratch on every change" approach
// it argues against: after a 10 % growth burst, compare cut quality vs the
// number of vertices that must physically move (migration volume is what a
// running system pays).
func BenchmarkAblationRepartitionBaseline(b *testing.B) {
	b.Run("adaptive", func(b *testing.B) {
		var cut, movedFrac float64
		for i := 0; i < b.N; i++ {
			g := gen.Cube3D(12)
			cfg := core.DefaultConfig(9, 1)
			cfg.RecordEvery = 0
			p, err := core.New(g, partition.Hash(g, 9), cfg)
			if err != nil {
				b.Fatal(err)
			}
			p.Run() // settle before the change
			burst := gen.ForestFireExpansion(g, g.NumVertices()/10, gen.DefaultForestFire(), 2)
			p.ApplyBatch(burst)
			res := p.Run() // absorb the change
			cut = res.FinalCutRatio
			movedFrac = float64(res.TotalMigrations) / float64(g.NumVertices())
		}
		b.ReportMetric(cut, "cut")
		b.ReportMetric(movedFrac, "moved/|V|")
	})
	b.Run("metis-scratch-remap", func(b *testing.B) {
		var cut, movedFrac float64
		for i := 0; i < b.N; i++ {
			g := gen.Cube3D(12)
			old, err := metis.PartitionKWay(g, 9, metis.DefaultOptions(1))
			if err != nil {
				b.Fatal(err)
			}
			burst := gen.ForestFireExpansion(g, g.NumVertices()/10, gen.DefaultForestFire(), 2)
			g.Apply(burst)
			old.Grow(g.NumSlots())
			fresh, moved, err := metis.Repartition(g, 9, old, metis.DefaultOptions(3))
			if err != nil {
				b.Fatal(err)
			}
			cut = partition.CutRatio(g, fresh)
			movedFrac = float64(moved) / float64(g.NumVertices())
		}
		b.ReportMetric(cut, "cut")
		b.ReportMetric(movedFrac, "moved/|V|")
	})
}

// BenchmarkAblationHotSpot compares plain adaptation against the
// hot-spot-aware extension under a skewed starting placement.
func BenchmarkAblationHotSpot(b *testing.B) {
	for _, mode := range []struct {
		name  string
		aware bool
	}{{"plain", false}, {"hotspot-aware", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var hotLoad float64
			for i := 0; i < b.N; i++ {
				g := gen.HolmeKim(800, 4, 0.1, 5)
				asn := partition.NewAssignment(g.NumSlots(), 4)
				for _, v := range g.Vertices() {
					asn.Assign(v, 0)
				}
				e, err := bsp.NewEngine(g, asn, hotProg{}, bsp.Config{Workers: 4, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				cfg := adaptive.DefaultConfig(5)
				cfg.HotSpotAware = mode.aware
				svc, err := adaptive.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.SetRepartitioner(svc)
				e.RunSupersteps(40)
				hotLoad = float64(e.Addr().Size(0))
			}
			b.ReportMetric(hotLoad, "hot-partition-size")
		})
	}
}

type hotProg struct{}

func (hotProg) Init(ctx *bsp.VertexContext) any         { return nil }
func (hotProg) Compute(ctx *bsp.VertexContext, _ []any) { ctx.SendTo(ctx.ID(), struct{}{}) }
